"""The continuous session: submit once, receive exact deltas forever.

:class:`ContinuousSession` owns the authoritative ``eid → box`` state of a
moving dataset and a set of standing subscriptions.  Each ``tick(updates)``:

1. normalizes the updates into a :class:`~repro.continuous.spec.TickBatch`
   and folds them into the authoritative state;
2. syncs every instantiated maintenance policy's backing structure;
3. routes each subscription to a policy — the **planner** — and collects
   its exact per-tick :class:`~repro.continuous.spec.Delta`.

The planner routes on observed churn and spec shape (EWMA-smoothed):

* churn above ``recompute_churn`` → ``recompute`` (when most elements
  change, maintaining the answer costs more than rebuilding it — the
  throwaway philosophy);
* join specs otherwise → ``incremental`` (the retract-and-reprobe trick);
* range/kNN specs under smooth small motion (mean displacement below
  ``predictive_displacement``) → ``predictive`` (TPR/LUR absorb it);
  teleport-style motion → ``incremental``.

A subscription may pin a policy explicitly (``subscribe(spec,
policy="incremental")``) — the oracle suite uses this to prove every
(policy × spec kind) pair exact.

**Fault containment.**  A policy raising mid-``tick`` marks only the failing
subscription dirty; the authoritative state and every other subscription
stay consistent, and the error propagates after the tick completes.  On the
next tick a dirty subscription re-syncs through the recompute policy — its
delta then spans the missed tick(s), the routed policy re-``adopt``s it
(rebuilding safe-region state from scratch), and nothing of the failed
evaluation leaks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, validate_items
from repro.instrumentation.counters import Counters
from repro.obs import MetricsRegistry
from repro.obs import span as _span

from repro.continuous.policies import POLICY_CLASSES, MaintenancePolicy, RecomputePolicy
from repro.continuous.spec import (
    ContinuousJoinSpec,
    ContinuousKNNQuery,
    ContinuousRangeQuery,
    ContinuousSpec,
    Delta,
    TickBatch,
    Update,
    knn_ids,
    normalize_updates,
)

AUTO = "auto"
RESYNC = "resync"


@dataclass
class ContinuousStats:
    """Session-level telemetry, the continuous analogue of ``JoinStats``.

    ``policy_routes`` counts per-tick routing decisions by policy name
    (plus ``"resync"`` for post-fault recoveries); delta volumes are split
    by element kind to mirror the issue's results/pairs vocabulary.
    Safe-region hits/invalidations live in the shared
    :class:`~repro.instrumentation.counters.Counters` (they are primitive
    ops, bumped inside the policies).
    """

    ticks: int = 0
    updates: int = 0
    deltas: int = 0
    empty_deltas: int = 0
    results_added: int = 0
    results_removed: int = 0
    pairs_added: int = 0
    pairs_removed: int = 0
    resyncs: int = 0
    faults: int = 0
    policy_routes: dict[str, int] = field(default_factory=dict)

    def record_route(self, policy: str) -> None:
        self.policy_routes[policy] = self.policy_routes.get(policy, 0) + 1

    def record_delta(self, kind: str, delta: Delta) -> None:
        self.deltas += 1
        if delta.is_empty:
            self.empty_deltas += 1
        if kind == "join":
            self.pairs_added += len(delta.added)
            self.pairs_removed += len(delta.removed)
        else:
            self.results_added += len(delta.added)
            self.results_removed += len(delta.removed)


class Subscription:
    """One standing query's live state inside a session.

    ``result`` is the current exact answer (a set of eids for range, an
    ordered ``(distance, eid)`` list for kNN, a set of ``(low, high)`` pairs
    for joins) and always equals the accumulation of ``deltas`` over the
    initial result.  ``listeners`` are called with each tick's delta —
    the hook the serving tier's push streams attach to.
    """

    def __init__(self, session: "ContinuousSession", spec: ContinuousSpec, pinned: str | None) -> None:
        self.session = session
        self.spec = spec
        self.pinned = pinned
        self.result: Any = None
        self.initial: Any = None
        self.deltas: list[Delta] = []
        self.latest: Delta | None = None
        self.listeners: list[Callable[["Subscription", Delta], None]] = []
        self.routed: str | None = None  # policy currently holding per-spec state
        self.dirty = False

    @property
    def cqid(self) -> int:
        return self.spec.cqid

    @property
    def kind(self) -> str:
        return self.spec.kind

    def result_set(self) -> set:
        """Membership view of the current result (ids, or id pairs)."""
        return knn_ids(self.result) if self.kind == "knn" else set(self.result)

    def cancel(self) -> None:
        self.session.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subscription(cqid={self.cqid}, kind={self.kind!r}, "
            f"policy={self.pinned or AUTO!r}, |result|={len(self.result)})"
        )


class ContinuousSession:
    """Standing queries over a moving dataset, with exact per-tick deltas.

    Parameters
    ----------
    items:
        Initial ``(eid, box)`` state.
    universe:
        Simulation domain (grids size their cells from it; required only
        for an empty initial state that grows later).
    policy:
        Default routing: ``"auto"`` (the planner) or a policy name to pin
        for every subscription that does not pin its own.
    recompute_churn:
        Churn fraction (EWMA of affected/tracked) above which the planner
        falls back to per-tick recompute.
    predictive_displacement:
        Mean per-tick displacement (EWMA) below which range/kNN specs route
        to the predictive policy; defaults to 1% of the universe diagonal.
    predictive_backing / predictive_options:
        ``"tpr"`` (default) or ``"lur"``, and constructor overrides for the
        backing index (e.g. ``{"max_speed": 0.05}``).
    executor_factory:
        Optional zero-arg callable producing a query executor for each
        policy's internal :class:`~repro.engine.QuerySession` — pass
        ``lambda: ShardedExecutor(pool=pool)`` to run probe batches on a
        shared :class:`~repro.serving.WorkerPool` (mutation fingerprints
        make the pool re-export snapshots as the backing indexes change).
    """

    def __init__(
        self,
        items: Iterable[Item] = (),
        universe: AABB | None = None,
        *,
        policy: str = AUTO,
        counters: Counters | None = None,
        recompute_churn: float = 0.3,
        predictive_displacement: float | None = None,
        cell_size: float | None = None,
        predictive_backing: str = "tpr",
        predictive_options: dict[str, Any] | None = None,
        executor_factory: Callable[[], Any] | None = None,
        keep_history: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if policy != AUTO and policy not in POLICY_CLASSES:
            raise ValueError(f"unknown policy: {policy!r}")
        if predictive_backing not in ("tpr", "lur"):
            raise ValueError(f"unknown predictive backing: {predictive_backing!r}")
        if not 0.0 < recompute_churn <= 1.0:
            raise ValueError(f"recompute_churn must be in (0, 1], got {recompute_churn}")
        materialized = validate_items(items)
        self._state: dict[int, AABB] = dict(materialized)
        self.universe = universe if universe is not None else self._bounds()
        self.policy = policy
        self.counters = counters if counters is not None else Counters()
        self.recompute_churn = recompute_churn
        if predictive_displacement is None and self.universe is not None:
            lo, hi = self.universe.lo, self.universe.hi
            diag = sum((h - l) ** 2 for l, h in zip(lo, hi)) ** 0.5
            predictive_displacement = 0.01 * diag
        self.predictive_displacement = predictive_displacement or 0.0
        self.cell_size = cell_size
        self.predictive_backing = predictive_backing
        self.predictive_options = dict(predictive_options or {})
        self.executor_factory = executor_factory
        self.keep_history = keep_history
        self.stats = ContinuousStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_ticks = self.metrics.counter("continuous.ticks")
        self._m_updates = self.metrics.counter("continuous.updates")
        self._m_tick_seconds = self.metrics.histogram("continuous.tick.seconds")
        self.ticks = 0
        self._subs: dict[int, Subscription] = {}
        self._policies: dict[str, MaintenancePolicy] = {}
        self._churn_ewma: float | None = None
        self._displacement_ewma: float | None = None
        self._ewma_alpha = 0.3

    # -- authoritative state -----------------------------------------------------

    def _bounds(self) -> AABB | None:
        if not self._state:
            return None
        boxes = iter(self._state.values())
        acc = next(boxes)
        for box in boxes:
            acc = acc.union(box)
        return acc

    def state_items(self) -> Iterator[Item]:
        """The authoritative ``(eid, box)`` state, deterministic order."""
        return iter(sorted(self._state.items()))

    def state_box(self, eid: int) -> AABB | None:
        return self._state.get(eid)

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, eid: int) -> bool:
        return eid in self._state

    def _make_executor(self):
        return self.executor_factory() if self.executor_factory is not None else None

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, spec: ContinuousSpec, policy: str | None = None) -> Subscription:
        """Register a standing query; its initial result is computed now
        (from scratch) and only deltas flow afterwards."""
        if not isinstance(spec, (ContinuousRangeQuery, ContinuousKNNQuery, ContinuousJoinSpec)):
            raise TypeError(f"not a continuous spec: {spec!r}")
        if policy is not None and policy not in POLICY_CLASSES:
            raise ValueError(f"unknown policy: {policy!r}")
        if spec.cqid in self._subs:
            raise ValueError(f"spec {spec.cqid} already subscribed")
        if policy is None and self.policy != AUTO:
            policy = self.policy
        sub = Subscription(self, spec, policy)
        recompute = self._policy("recompute")
        sub.result = recompute.full_result(spec)
        sub.initial = (
            list(sub.result) if spec.kind == "knn" else set(sub.result)
        )
        self._subs[spec.cqid] = sub
        return sub

    def unsubscribe(self, sub: Subscription | int) -> None:
        cqid = sub.cqid if isinstance(sub, Subscription) else sub
        gone = self._subs.pop(cqid, None)
        if gone is not None and gone.routed is not None:
            self._policies[gone.routed].forget(gone)

    @property
    def subscriptions(self) -> list[Subscription]:
        return [self._subs[cqid] for cqid in sorted(self._subs)]

    # -- the tick ---------------------------------------------------------------

    def tick(self, updates: Iterable[Update] = ()) -> dict[int, Delta]:
        """Fold one tick's updates into every standing result.

        Returns ``cqid → Delta`` for every subscription.  If a maintenance
        policy raises, the remaining subscriptions still complete, the
        failing subscription is queued for next-tick resync, and the first
        error re-raises after the tick's bookkeeping."""
        tick_start = time.perf_counter()
        batch = normalize_updates(updates, self._state)
        self.ticks += 1
        self.stats.ticks += 1
        self.stats.updates += batch.size
        self._m_ticks.inc()
        self._m_updates.inc(batch.size)
        try:
            with _span(
                "continuous.tick",
                counters=self.counters,
                tick=self.ticks,
                updates=batch.size,
                subscriptions=len(self._subs),
            ):
                for eid, (_, new) in batch.moved.items():
                    self._state[eid] = new
                self._state.update(batch.inserted)
                for eid in batch.deleted:
                    del self._state[eid]
                for instantiated in self._policies.values():
                    instantiated.apply(batch)
                self._observe(batch)

                deltas: dict[int, Delta] = {}
                first_error: Exception | None = None
                for sub in self.subscriptions:
                    resync = sub.dirty
                    name = "recompute" if resync else self._route(sub)
                    policy = self._policy(name)
                    if sub.routed != name:
                        if sub.routed is not None:
                            self._policies[sub.routed].forget(sub)
                        policy.adopt(sub)
                        sub.routed = name
                    try:
                        added, removed = policy.evaluate(sub, batch)
                    except Exception as exc:
                        sub.dirty = True
                        self.stats.faults += 1
                        self.metrics.counter("continuous.faults").inc()
                        # Whatever per-spec state the policy half-mutated is
                        # dead: drop it now, and let the resync's adopt()
                        # rebuild it from the last emitted result, which
                        # evaluate() never got far enough to commit.
                        policy.forget(sub)
                        sub.routed = None
                        if first_error is None:
                            first_error = exc
                        continue
                    if resync:
                        sub.dirty = False
                        self.stats.resyncs += 1
                        # Hand the subscription straight back: the planner's
                        # policy re-adopts from the freshly committed result,
                        # so the next tick maintains incrementally again
                        # instead of paying a second recompute.
                        target = self._route(sub)
                        if target != sub.routed:
                            self._policies[sub.routed].forget(sub)
                            self._policy(target).adopt(sub)
                            sub.routed = target
                    routed = RESYNC if resync else name
                    self.stats.record_route(routed)
                    self.metrics.counter(f"continuous.route.{routed}").inc()
                    delta = Delta(tick=self.ticks, added=frozenset(added), removed=frozenset(removed))
                    sub.latest = delta
                    if self.keep_history:
                        sub.deltas.append(delta)
                    deltas[sub.cqid] = delta
                    self.stats.record_delta(sub.kind, delta)
                    for listener in sub.listeners:
                        listener(sub, delta)
                if first_error is not None:
                    raise first_error
                return deltas
        finally:
            self._m_tick_seconds.observe(time.perf_counter() - tick_start)

    # -- the planner -------------------------------------------------------------

    def _observe(self, batch: TickBatch) -> None:
        tracked = max(len(self._state), 1)
        churn = batch.size / tracked
        displacement = batch.mean_displacement()
        alpha = self._ewma_alpha
        if self._churn_ewma is None:
            self._churn_ewma = churn
            self._displacement_ewma = displacement
        else:
            self._churn_ewma = alpha * churn + (1 - alpha) * self._churn_ewma
            self._displacement_ewma = (
                alpha * displacement + (1 - alpha) * self._displacement_ewma
            )

    def _route(self, sub: Subscription) -> str:
        """Pick this tick's policy: pinned wins, then churn, then spec shape."""
        if sub.pinned is not None:
            return sub.pinned
        churn = self._churn_ewma or 0.0
        if churn > self.recompute_churn:
            return "recompute"
        if sub.kind == "join":
            return "incremental"
        displacement = self._displacement_ewma or 0.0
        if displacement <= self.predictive_displacement and self.predictive_displacement > 0:
            return "predictive"
        return "incremental"

    def _policy(self, name: str) -> MaintenancePolicy:
        policy = self._policies.get(name)
        if policy is None:
            policy = POLICY_CLASSES[name](self)
            self._policies[name] = policy
        return policy

    @property
    def recompute(self) -> RecomputePolicy:
        """The recompute policy doubles as the session's oracle."""
        return self._policy("recompute")  # type: ignore[return-value]

    def oracle_result(self, sub: Subscription | ContinuousSpec):
        """A from-scratch answer against the current authoritative state —
        what the accumulated deltas must always reproduce."""
        spec = sub.spec if isinstance(sub, Subscription) else sub
        return self.recompute.full_result(spec)
