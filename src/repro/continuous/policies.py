"""Maintenance policies: three ways to keep a standing result exact.

The iterated-join literature the paper leans on (Sowell et al.) frames
continuous evaluation as a recompute-vs-maintain trade-off; the moving-object
survey in §3 adds the predictive-index option.  The session's planner routes
each subscription, each tick, to one of:

* :class:`RecomputePolicy` — the throwaway philosophy: rebuild a fresh grid
  from the authoritative state and re-answer from scratch.  Always correct,
  pays O(n) per tick, and doubles as the *oracle* every other policy is
  tested against (and the resync path after a mid-tick fault).
* :class:`IncrementalPolicy` — maintain the answer, not the index: an
  incrementally-updated grid absorbs the tick's updates, and each result is
  patched from the tick's *affected set* alone, generalizing
  :class:`~repro.joins.iterated.IteratedSelfJoin`'s retract-and-reprobe trick
  to range / kNN / join specs with per-spec safe-region checks.
* :class:`PredictivePolicy` — the TPR/LUR bet: a predictive (or lazy) index
  absorbs motion nearly for free, and invalidated results are re-asked
  against it; exactness comes from those indexes' built-in refinement
  against exact current boxes.

Every policy maintains the same invariant the oracle suite pins: after
``evaluate``, the subscription's result equals a full recompute against the
authoritative state.  Safe-region accounting (hits = results provably
unchanged without re-evaluation; invalidations = safe region violated) flows
into :class:`~repro.instrumentation.counters.Counters`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.core.uniform_grid import UniformGrid
from repro.engine import QuerySession
from repro.geometry.aabb import AABB
from repro.indexes.base import KNNResult, SpatialIndex
from repro.joins.session import JoinSession
from repro.joins.spec import DistanceJoinSpec
from repro.moving.lur_tree import LURTree
from repro.moving.tpr import TPRIndex

from repro.continuous.spec import (
    ContinuousJoinSpec,
    ContinuousSpec,
    TickBatch,
    knn_ids,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.continuous.session import ContinuousSession, Subscription

Pair = tuple[int, int]


def _ordered(a: int, b: int) -> Pair:
    return (a, b) if a < b else (b, a)


class MaintenancePolicy:
    """One maintenance strategy shared by every subscription routed to it.

    ``apply`` runs every tick on every *instantiated* policy — each accepts
    the batch immediately (delta-maintenance policies may fold it into their
    backing lazily, but always before the next probe), so routing can switch
    per tick without a rebuild.  ``adopt`` initializes per-spec state when a subscription
    arrives (from routing or a post-fault resync); ``forget`` drops it.
    ``evaluate`` returns the tick's exact ``(added, removed)`` sets and must
    commit ``sub.result`` only as its final action — the session relies on
    ``sub.result`` always equaling the last *emitted* result, so a policy
    that raises mid-evaluation leaves only its own internal state suspect
    (discarded by the resync's ``adopt``).
    """

    name: str = "abstract"

    def __init__(self, session: "ContinuousSession") -> None:
        self.session = session
        self.counters = session.counters

    def apply(self, batch: TickBatch) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def adopt(self, sub: "Subscription") -> None:
        """Initialize per-spec state from the subscription's current result."""

    def forget(self, sub: "Subscription") -> None:
        """Drop per-spec state for an unsubscribed / re-routed subscription."""

    def evaluate(
        self, sub: "Subscription", batch: TickBatch
    ) -> tuple[set, set]:  # pragma: no cover - interface
        raise NotImplementedError


# -- recompute -----------------------------------------------------------------


class RecomputePolicy(MaintenancePolicy):
    """Throwaway rebuild: fresh grid + from-scratch answers, once per tick.

    The rebuilt grid and its :class:`~repro.engine.QuerySession` are shared
    by every subscription evaluated in the same tick (keyed on the tick
    number), so N recompute-routed specs pay one rebuild.  Join specs run a
    :class:`~repro.joins.spec.DistanceJoinSpec` through a persistent
    :class:`~repro.joins.JoinSession`, riding the planner/strategy registry
    and accumulating its telemetry.
    """

    name = "recompute"

    def __init__(self, session: "ContinuousSession") -> None:
        super().__init__(session)
        self.rebuilds = 0
        self._cache: tuple[int, QuerySession] | None = None
        self._joins = JoinSession(counters=self.counters)

    def apply(self, batch: TickBatch) -> None:
        self._cache = None  # state changed; next evaluate rebuilds

    def _query_session(self) -> QuerySession:
        tick = self.session.ticks
        if self._cache is None or self._cache[0] != tick:
            grid = UniformGrid(universe=self.session.universe, counters=self.counters)
            grid.bulk_load(list(self.session.state_items()))
            self.rebuilds += 1
            self._cache = (tick, QuerySession(grid, executor=self.session._make_executor()))
        return self._cache[1]

    def full_result(self, spec: ContinuousSpec):
        """The from-scratch answer: a set for range/join, an ordered
        ``(distance, id)`` list for kNN."""
        if spec.kind == "range":
            return set(self._query_session().range_query([spec.box])[0])
        if spec.kind == "knn":
            return self._query_session().knn([spec.point], spec.k)[0]
        items = tuple(self.session.state_items())
        if not items:
            return set()
        refine = spec.refine
        if refine is not None and spec.epsilon:
            # ContinuousJoinSpec's refine *sharpens* the box-gap predicate;
            # DistanceJoinSpec's refine *replaces* it (candidates are only
            # strategy-dependent supersets).  Fold the gap test in so the
            # oracle's pair set is strategy-independent and matches the
            # incremental path.
            state, eps, user = self.session._state, spec.epsilon, refine
            refine = lambda a, b: (
                state[a].min_distance_to_box(state[b]) <= eps and user(a, b)
            )
        return set(
            self._joins.run(DistanceJoinSpec(items, None, spec.epsilon, refine))
        )

    def evaluate(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        new = self.full_result(sub.spec)
        new_set = knn_ids(new) if sub.spec.kind == "knn" else new
        old_set = sub.result_set()
        added, removed = new_set - old_set, old_set - new_set
        sub.result = new
        return added, removed


# -- shared incremental/predictive machinery -----------------------------------


class _DeltaMaintenance(MaintenancePolicy):
    """Maintain answers against a live backing index (never rebuilt).

    Subclasses provide the backing (:meth:`_make_backing` / :meth:`_apply`)
    and the per-kind evaluation hooks; the safe-region logic — which results
    provably survived the tick untouched — is shared.
    """

    def __init__(self, session: "ContinuousSession") -> None:
        super().__init__(session)
        self._backing: SpatialIndex = self._make_backing()
        self._backing.bulk_load(list(session.state_items()))
        self._probe_session = QuerySession(
            self._backing, executor=session._make_executor()
        )
        # Ticks accepted but not yet folded into the backing index — the
        # "maintain the answer, not the index" discipline taken to its
        # conclusion: range results are patched from the affected set alone
        # and never probe, so the backing only pays for updates when a kNN
        # invalidation, join re-probe or predictive re-ask actually needs
        # it (flushed in tick order by :meth:`_sync`).
        self._pending: list[TickBatch] = []
        # Per-join-spec partner adjacency (eid -> set of partners), the
        # retract-and-reprobe working state.
        self._partners: dict[int, dict[int, set[int]]] = {}
        # Per-kNN-spec distance slack: the (k+1)-th neighbor's distance at
        # the last full probe, since tightened by every outsider that came
        # near.  While the patched k-th distance stays strictly below it,
        # no non-member can belong in the top-k, so member motion is
        # absorbed by patching distances instead of invalidating.  Absent
        # entries read as 0.0 — the legacy invalidate-on-any-member-motion
        # behavior — so adopted results start conservative.
        self._knn_slack: dict[int, float] = {}

    def _make_backing(self) -> SpatialIndex:  # pragma: no cover - interface
        raise NotImplementedError

    def _apply(self, batch: TickBatch) -> None:
        """Default per-element sync; subclasses may override (TPR advances)."""
        for eid, (old, new) in sorted(batch.moved.items()):
            self._backing.update(eid, old, new)
        for eid, box in sorted(batch.inserted.items()):
            self._backing.insert(eid, box)
        for eid, box in sorted(batch.deleted.items()):
            self._backing.delete(eid, box)

    def apply(self, batch: TickBatch) -> None:
        self._pending.append(batch)

    def _sync(self) -> None:
        """Fold every deferred tick into the backing index, oldest first."""
        if self._pending:
            pending, self._pending = self._pending, []
            for batch in pending:
                self._apply(batch)

    # -- per-spec state ---------------------------------------------------------

    def adopt(self, sub: "Subscription") -> None:
        if sub.spec.kind == "join":
            partners: dict[int, set[int]] = {}
            for a, b in sub.result:
                partners.setdefault(a, set()).add(b)
                partners.setdefault(b, set()).add(a)
            self._partners[sub.spec.cqid] = partners
        elif sub.spec.kind == "knn":
            # The adopted result was computed elsewhere; any slack from a
            # previous tenure here is stale geometry.
            self._knn_slack.pop(sub.spec.cqid, None)

    def forget(self, sub: "Subscription") -> None:
        self._partners.pop(sub.spec.cqid, None)
        self._knn_slack.pop(sub.spec.cqid, None)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        if batch.is_empty:
            # Zero-motion tick: nothing can have changed, for any spec kind.
            self.counters.safe_region_hits += 1
            return set(), set()
        kind = sub.spec.kind
        if kind == "range":
            return self._evaluate_range(sub, batch)
        if kind == "knn":
            return self._evaluate_knn(sub, batch)
        return self._evaluate_join(sub, batch)

    def _evaluate_range(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        """Patch membership from the affected set alone: elements that did
        not change this tick cannot enter or leave the box."""
        box = sub.spec.box
        current: set = sub.result
        added: set = set()
        removed: set = set()
        for eid in batch.affected_ids():
            now = self.session.state_box(eid)
            inside = now is not None and now.intersects(box)
            self.counters.elem_tests += 1
            if inside and eid not in current:
                added.add(eid)
            elif not inside and eid in current:
                removed.add(eid)
        if added or removed:
            self.counters.safe_region_invalidations += 1
            sub.result = (current - removed) | added
        else:
            self.counters.safe_region_hits += 1
        return added, removed

    def _evaluate_knn(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        """Distance-slack safe region: recompute only when geometry demands.

        The slack for a spec is the (k+1)-th neighbor's distance at the last
        full probe (tightened by every outsider seen since); every
        non-member provably sits at or beyond it.  A tick then invalidates
        the cached ``(distance, id)`` list only when

        (a) a member disappeared,
        (b) member motion pushed the *patched* k-th distance to the slack
            (``>=`` — at the slack a tie could displace a member under the
            ``(distance, id)`` order), or
        (c) an inserted or moved outsider reached within the patched k-th
            distance (``<=``, same tie argument; a short list means every
            tracked element is a member, so any entrant violates).

        Otherwise the tick is a hit: moved members keep their seats with
        freshly patched exact distances, and outsiders that came closer than
        the old slack tighten it.  Distances are patched with the same
        scalar ``min_distance_to_point`` the probe path uses, so a held
        result stays bit-identical to a recompute.
        """
        spec = sub.spec
        cqid = spec.cqid
        current: KNNResult = sub.result
        members = knn_ids(current)
        slack = self._knn_slack.get(cqid, 0.0)

        invalid = any(eid in members for eid in batch.deleted)
        patched = current
        moved_members = [eid for eid in batch.moved if eid in members]
        if not invalid and moved_members:
            moved_d = {}
            for eid in moved_members:
                self.counters.elem_tests += 1
                moved_d[eid] = batch.moved[eid][1].min_distance_to_point(spec.point)
            patched = sorted((moved_d.get(eid, d), eid) for d, eid in current)
            if len(patched) == spec.k and patched[-1][0] >= slack:
                invalid = True
        if not invalid and (batch.inserted or batch.moved):
            d_k = patched[-1][0] if len(patched) == spec.k else math.inf
            nearest = math.inf
            for eid, box in list(batch.inserted.items()) + [
                (eid, new) for eid, (_, new) in batch.moved.items() if eid not in members
            ]:
                self.counters.elem_tests += 1
                dist = box.min_distance_to_point(spec.point)
                if dist <= d_k:
                    invalid = True
                    break
                nearest = min(nearest, dist)
            if not invalid and nearest < slack:
                self._knn_slack[cqid] = nearest
        if not invalid:
            self.counters.safe_region_hits += 1
            if patched is not current:
                sub.result = patched
            return set(), set()
        self.counters.safe_region_invalidations += 1
        new, new_slack = self._knn(spec.point, spec.k)
        self._knn_slack[cqid] = new_slack
        new_members = knn_ids(new)
        added, removed = new_members - members, members - new_members
        sub.result = new
        return added, removed

    def _knn(self, point: Sequence[float], k: int) -> tuple[KNNResult, float]:
        """Full probe, plus the next slack: the (k+1)-th neighbor's distance.

        One ``k+1`` probe serves both — its first ``k`` entries are exactly
        the ``k`` probe's answer (per-element distances don't depend on
        ``k``, and the expanding-window search only ever *grows* its
        candidate pool, whose extra candidates all sit beyond the window
        radius that confirmed the first ``k``)."""
        self._sync()
        probe = self._probe_session.knn([point], k + 1)[0]
        slack = probe[k][0] if len(probe) > k else math.inf
        return probe[:k], slack

    def _evaluate_join(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        """The IteratedSelfJoin trick, with deltas: retract every pair
        touching a changed element, re-probe the changed survivors' (ε-
        expanded) boxes as one batch, and report the difference.  Pairs
        between untouched elements carry over — their geometry is frozen, so
        the predicate's value is too."""
        spec: ContinuousJoinSpec = sub.spec
        partners = self._partners[spec.cqid]
        affected = batch.affected_ids()

        before: set[Pair] = set()
        for eid in affected:
            for other in partners.get(eid, ()):
                before.add(_ordered(eid, other))
        for a, b in before:
            partners[a].discard(b)
            partners[b].discard(a)
        for eid in batch.deleted:
            partners.pop(eid, None)

        survivors = sorted(eid for eid in affected if eid not in batch.deleted)
        after: set[Pair] = set()
        if survivors:
            eps = spec.epsilon
            boxes = []
            for eid in survivors:
                box = self.session.state_box(eid)
                boxes.append(box.expanded(eps) if eps else box)
            hits = self._probe_candidates(boxes)
            for eid, candidates in zip(survivors, hits):
                my_box = self.session.state_box(eid)
                for other in candidates:
                    if other == eid:
                        continue
                    pair = _ordered(eid, other)
                    if pair in after:
                        continue
                    if eps:
                        self.counters.refine_tests += 1
                        if my_box.min_distance_to_box(self.session.state_box(other)) > eps:
                            continue
                    if spec.refine is not None:
                        self.counters.refine_tests += 1
                        if not spec.refine(*pair):
                            continue
                    after.add(pair)
            for a, b in after:
                partners.setdefault(a, set()).add(b)
                partners.setdefault(b, set()).add(a)

        added, removed = after - before, before - after
        if added or removed:
            self.counters.safe_region_invalidations += 1
            sub.result = (sub.result - removed) | added
        else:
            self.counters.safe_region_hits += 1
        return added, removed

    def _probe_candidates(self, boxes: Sequence[AABB]) -> list[list[int]]:
        """Ids whose stored box intersects each probe box, one batch."""
        self._sync()
        return self._probe_session.range_query(boxes)


class IncrementalPolicy(_DeltaMaintenance):
    """Incremental maintenance over a live uniform grid.

    The grid absorbs each tick's updates in place (cheap cell switches under
    simulation motion — the paper's own argument for grids) and serves the
    join re-probes and kNN recomputes; range results never touch it at all,
    being patched from the affected set by pure membership tests.
    """

    name = "incremental"

    def _make_backing(self) -> SpatialIndex:
        return UniformGrid(
            universe=self.session.universe,
            cell_size=self.session.cell_size,
            counters=self.counters,
        )


class PredictivePolicy(_DeltaMaintenance):
    """Predictive evaluation on a TPR (default) or LUR backing index.

    The index absorbs motion without structural work — TPR swept boxes
    cover predicted positions until the horizon, LUR grace boxes absorb
    jitter — and invalidated results are *re-asked* against it (both
    indexes refine candidates against exact current boxes, so answers stay
    exact even under wild misprediction; mispredictions cost time, never
    correctness).  Range specs are re-evaluated from the index whenever the
    tick is non-empty: that is the predictive bet — evaluation is cheap
    because maintenance was.
    """

    name = "predictive"

    def _make_backing(self) -> SpatialIndex:
        session = self.session
        if session.predictive_backing == "lur":
            options = {"grace": 0.5, **session.predictive_options}
            return LURTree(counters=self.counters, **options)
        options = {"max_speed": 0.1, "horizon": 10, **session.predictive_options}
        return TPRIndex(counters=self.counters, **options)

    def _apply(self, batch: TickBatch) -> None:
        if isinstance(self._backing, TPRIndex):
            # advance() owns the clock: one bump per tick, then the tick's
            # true motion (prediction escapes re-anchor inside).
            self._backing.advance(batch.moves())
            for eid, box in sorted(batch.inserted.items()):
                self._backing.insert(eid, box)
            for eid, box in sorted(batch.deleted.items()):
                self._backing.delete(eid, box)
        else:
            super()._apply(batch)

    def _evaluate_range(self, sub: "Subscription", batch: TickBatch) -> tuple[set, set]:
        self._sync()
        new = set(self._probe_session.range_query([sub.spec.box])[0])
        old = sub.result
        added, removed = new - old, old - new
        if added or removed:
            self.counters.safe_region_invalidations += 1
        else:
            self.counters.safe_region_hits += 1
        sub.result = new
        return added, removed


POLICY_CLASSES: dict[str, type[MaintenancePolicy]] = {
    RecomputePolicy.name: RecomputePolicy,
    IncrementalPolicy.name: IncrementalPolicy,
    PredictivePolicy.name: PredictivePolicy,
}
