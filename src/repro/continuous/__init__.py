"""Continuous queries over moving objects — submit once, stream deltas.

The paper's motivating workload (structural plasticity: neurons move while
range and synapse-join analyses run every step) is a *continuous* query
problem.  This package promotes it to a first-class scenario:

* spec values (:class:`ContinuousRangeQuery`, :class:`ContinuousKNNQuery`,
  :class:`ContinuousJoinSpec`) submitted once to a
  :class:`ContinuousSession`;
* exact per-tick :class:`Delta` streams (results-added / results-removed,
  pairs-added / pairs-removed) instead of full result sets;
* a maintenance planner routing each spec per tick between full recompute
  (throwaway rebuild), incremental maintenance (the
  :class:`~repro.joins.iterated.IteratedSelfJoin` safe-region trick
  generalized to all spec kinds) and predictive evaluation on TPR/LUR
  backing indexes — by observed churn and spec shape.

See ``examples/continuous_monitoring.py`` and the "Continuous queries"
section of the README.
"""

from repro.continuous.policies import (
    POLICY_CLASSES,
    IncrementalPolicy,
    MaintenancePolicy,
    PredictivePolicy,
    RecomputePolicy,
)
from repro.continuous.session import ContinuousSession, ContinuousStats, Subscription
from repro.continuous.spec import (
    ContinuousJoinSpec,
    ContinuousKNNQuery,
    ContinuousQuery,
    ContinuousRangeQuery,
    ContinuousSpec,
    Delete,
    Delta,
    Insert,
    TickBatch,
    delta_between,
    knn_ids,
    normalize_updates,
)

__all__ = [
    "ContinuousSession",
    "ContinuousStats",
    "Subscription",
    "ContinuousQuery",
    "ContinuousSpec",
    "ContinuousRangeQuery",
    "ContinuousKNNQuery",
    "ContinuousJoinSpec",
    "Insert",
    "Delete",
    "Delta",
    "TickBatch",
    "delta_between",
    "knn_ids",
    "normalize_updates",
    "MaintenancePolicy",
    "RecomputePolicy",
    "IncrementalPolicy",
    "PredictivePolicy",
    "POLICY_CLASSES",
]
