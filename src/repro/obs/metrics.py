"""Cross-process metrics: named counters, gauges and fixed-bucket histograms.

The repo's telemetry grew up ad hoc — ``Counters`` for kernel work,
``flush_seconds``/``queue_high_water`` fields bolted onto the session stats,
per-benchmark latency lists.  This module is the unified registry those
tallies flow into:

* :class:`Counter` — a monotonically increasing total (int or float);
* :class:`Gauge` — a point-in-time value (merges take the max, which is the
  right fold for high-water marks — the dominant gauge kind here);
* :class:`Histogram` — fixed log-spaced buckets, so p50/p95/p99 come out of
  cumulative bucket counts **without storing samples**, and two histograms
  merge by adding bucket vectors — the property that makes worker-side
  registries mergeable into the parent on every pool result.

Registries are cheap dictionaries guarded by one lock; hot paths cache the
metric object once and pay an attribute bump per event.  ``snapshot()``
produces a plain-dict form that pickles across process boundaries, and
``snapshot_delta`` subtracts two snapshots so a pool worker can ship only
the work *one task* charged (:func:`repro.obs.capture_worker`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

#: Default latency buckets: powers of two from 1 µs to ~134 s.  Log-spaced
#: buckets keep relative quantile error bounded (< one octave) at every
#: scale a flush, shard or tick can plausibly take.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-6 * (2.0 ** i) for i in range(28))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; ``track_max`` folds high-water marks."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: percentiles without stored samples.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one overflow
    bucket catches everything past the last edge.  ``percentile`` walks the
    cumulative counts and interpolates linearly inside the landing bucket,
    clamped to the observed ``[min, max]`` — exact at the extremes, within
    one bucket's width everywhere else.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "vmin", "vmax")
    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def percentile(self, q: float) -> float:
        """The q-th percentile (``q`` in [0, 100]) of the observed stream."""
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.vmax
                fraction = (rank - cumulative) / n
                estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                return max(self.vmin, min(self.vmax, estimate))
            cumulative += n
        return self.vmax

    def summary(self) -> dict:
        """The serving-tier digest: count/sum/min/max plus p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def to_dict(self) -> dict:
        out = {"kind": "histogram", "bounds": list(self.bounds),
               "buckets": list(self.buckets), "count": self.count,
               "sum": self.total}
        if self.count:
            out["min"] = self.vmin
            out["max"] = self.vmax
        out.update({k: v for k, v in self.summary().items()
                    if k in ("p50", "p95", "p99")})
        return out


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A thread-safe name → metric map with get-or-create accessors.

    Naming scheme (see README "Observability"): dotted lower-case
    ``layer.component[.unit]`` — ``query.flush.seconds``,
    ``join.strategy.pbsm_spill``, ``spill.bytes_written``,
    ``worker.query_shard.seconds``.  The Prometheus renderer maps dots to
    underscores.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, factory, kind: str) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, requested {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(bounds), "histogram")  # type: ignore[return-value]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """The scalar value of a counter/gauge (``default`` when absent)."""
        metric = self.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- cross-process plumbing -----------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """A picklable plain-dict copy of every metric."""
        with self._lock:
            return {name: metric.to_dict() for name, metric in self._metrics.items()}

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a snapshot (a worker's, or another registry's) into this one.

        Counters and histogram buckets add; gauges take the max (high-water
        fold); histogram bounds must agree — mismatched bounds raise rather
        than silently mis-bucket.
        """
        with self._lock:
            for name, data in snapshot.items():
                kind = data["kind"]
                if kind == "counter":
                    self.counter(name).inc(data["value"])
                elif kind == "gauge":
                    self.gauge(name).track_max(data["value"])
                else:
                    hist = self.histogram(name, data["bounds"])
                    if list(hist.bounds) != list(data["bounds"]):
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ; cannot merge"
                        )
                    for i, n in enumerate(data["buckets"]):
                        hist.buckets[i] += n
                    hist.count += data["count"]
                    hist.total += data["sum"]
                    if data["count"]:
                        hist.vmin = min(hist.vmin, data["min"])
                        hist.vmax = max(hist.vmax, data["max"])

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


def snapshot_delta(
    after: Mapping[str, dict], before: Mapping[str, dict]
) -> dict[str, dict]:
    """The work charged between two snapshots of one registry.

    Counters and histogram buckets subtract; gauges report the ``after``
    value (a high-water mark is not differentiable).  Metrics that did not
    change are dropped, so a pool worker ships only what its task did.
    Histogram min/max carry the ``after`` values — merged extremes stay
    conservative (never narrower than the truth).
    """
    delta: dict[str, dict] = {}
    for name, data in after.items():
        prior = before.get(name)
        if prior is None:
            if data["kind"] != "histogram" or data["count"]:
                if data["kind"] != "counter" or data["value"]:
                    delta[name] = data
            continue
        kind = data["kind"]
        if kind == "counter":
            diff = data["value"] - prior["value"]
            if diff:
                delta[name] = {"kind": "counter", "value": diff}
        elif kind == "gauge":
            if data["value"] != prior["value"]:
                delta[name] = data
        else:
            count = data["count"] - prior["count"]
            if count:
                delta[name] = {
                    "kind": "histogram",
                    "bounds": data["bounds"],
                    "buckets": [a - b for a, b in zip(data["buckets"], prior["buckets"])],
                    "count": count,
                    "sum": data["sum"] - prior["sum"],
                    "min": data.get("min", 0.0),
                    "max": data.get("max", 0.0),
                }
    return delta


# -- the process-wide registry -------------------------------------------------

_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry layer instrumentation publishes into.

    Sessions keep their own registries for per-session reports; storage,
    spill and approximate-kNN layers (which have no session handle) land
    here, as do worker-side deltas merged back by the pool.
    """
    return _GLOBAL
