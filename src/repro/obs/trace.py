"""Structured span tracing with cross-process context propagation.

A *span* is one timed operation — a session flush, a join strategy run, a
worker shard — with a name, wall-clock bounds, free-form attributes and a
parent.  Parentage is tracked through a :mod:`contextvars` variable, so
nesting falls out of ``with`` blocks; crossing a process boundary is
explicit: the parent side captures :func:`propagation_context`, ships it
with the task, and the worker side adopts it via :func:`capture_worker`,
which also returns the spans and metric deltas the task produced so the
pool can merge them back.  Timestamps are epoch ``time.time_ns()`` — not
``perf_counter`` — precisely so spans recorded in different processes
share one clock and render as a single tree in Perfetto
(:meth:`Tracer.export_chrome`).

The tracer is **disabled by default** and the disabled path is a single
dictionary-free call returning a cached no-op context manager; hot paths
stay instrumented unconditionally and pay < 1 µs per span when tracing is
off (asserted by ``benchmarks/bench_obs_overhead.py``).  Set
``REPRO_TRACE=1`` to enable at import, or call :func:`enable_tracing`.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

# (trace_id, span_id) of the active span; None outside any span.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_SPAN_IDS = itertools.count(1)


def _new_id() -> str:
    """A process-unique id; embedding the pid keeps ids unique across the
    pool without coordination."""
    return f"{os.getpid():x}-{next(_SPAN_IDS):x}"


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_ns: int
    end_ns: int = 0
    pid: int = field(default_factory=os.getpid)
    tid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0, self.end_ns - self.start_ns) / 1e9

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            start_ns=data["start_ns"],
            end_ns=data["end_ns"],
            pid=data["pid"],
            tid=data["tid"],
            attrs=dict(data["attrs"]),
        )


class _ActiveSpan:
    """Context manager for one live span; also the handle instrumented code
    uses to attach attributes (``span.set_attr``) and counter deltas."""

    __slots__ = ("_tracer", "_span", "_token", "_counters_before", "_counters_obj")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any],
                 counters: Any = None) -> None:
        self._tracer = tracer
        self._counters_obj = counters
        self._counters_before = None
        parent = _CURRENT.get()
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = _new_id(), None
        self._span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start_ns=0,
            tid=threading.get_ident() & 0xFFFFFFFF,
            attrs=attrs,
        )
        self._token = None

    def __enter__(self) -> Span:
        span = self._span
        self._token = _CURRENT.set((span.trace_id, span.span_id))
        if self._counters_obj is not None:
            self._counters_before = self._counters_obj.snapshot()
        span.start_ns = time.time_ns()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.end_ns = time.time_ns()
        if exc_type is not None:
            span.attrs["error"] = exc_type.__name__
        if self._counters_before is not None:
            delta = self._counters_obj.diff(self._counters_before)
            for key, value in delta.as_dict().items():
                if value:
                    span.attrs[f"counters.{key}"] = value
        _CURRENT.reset(self._token)
        self._tracer._record(span)


class _NoopSpan:
    """The disabled-tracer fast path: one cached instance, no allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished spans; disabled unless told otherwise."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def span(self, name: str, *, counters: Any = None, **attrs: Any):
        """Open a span.  ``counters`` may be any object with
        ``snapshot()``/``diff()`` returning something with ``as_dict()``
        (duck-typed to :class:`repro.instrumentation.counters.Counters`);
        nonzero deltas are attached as ``counters.*`` attrs on exit."""
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs, counters)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def ingest(self, spans: Iterator[Mapping[str, Any]] | list) -> None:
        """Adopt spans recorded elsewhere (pool workers, forked shards)."""
        decoded = [
            span if isinstance(span, Span) else Span.from_dict(span)
            for span in spans
        ]
        with self._lock:
            self._spans.extend(decoded)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        with self._lock:
            out = self._spans
            self._spans = []
            return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_chrome(self, path: str | None = None) -> list[dict]:
        """Spans as Chrome ``trace_event`` complete events ("ph": "X") —
        load the JSON file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Parent/child renders by nesting since child
        intervals sit inside their parents on the same pid/tid track."""
        events = []
        for span in self.spans():
            args = {k: v for k, v in span.attrs.items()}
            args["span_id"] = span.span_id
            if span.parent_id:
                args["parent_id"] = span.parent_id
            args["trace_id"] = span.trace_id
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": max(span.end_ns - span.start_ns, 0) / 1000.0,
                "pid": span.pid,
                "tid": span.tid,
                "cat": span.name.split(".", 1)[0],
                "args": args,
            })
        if path is not None:
            with open(path, "w") as fh:
                json.dump({"traceEvents": events,
                           "displayTimeUnit": "ms"}, fh, indent=1)
        return events


# -- the process-wide tracer ---------------------------------------------------

_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"))


def get_tracer() -> Tracer:
    return _TRACER


def enable_tracing() -> Tracer:
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> None:
    _TRACER.enabled = False


def span(name: str, *, counters: Any = None, **attrs: Any):
    """Module-level shortcut: ``with obs.span("join.flush", strategy=...)``."""
    return _TRACER.span(name, counters=counters, **attrs)


def tracing_enabled() -> bool:
    return _TRACER.enabled


# -- cross-process propagation -------------------------------------------------

def propagation_context() -> tuple[str, str] | None:
    """What the parent ships with a task: ``(trace_id, parent_span_id)`` of
    the active span, or None when tracing is off / no span is open."""
    if not _TRACER.enabled:
        return None
    return _CURRENT.get()


class capture_worker:
    """Worker-side bracket around one task.

    Adopts the propagated context (temporarily enabling this process's
    tracer — pool workers run one task at a time, so flipping the global
    flag is race-free), opens a ``worker.<task>`` span, snapshots the
    global metrics registry, and on exit packages everything the task
    produced::

        with capture_worker("query_shard", ctx) as cap:
            ... do the work ...
        return (*payload, cap.telemetry)

    ``telemetry`` is ``{"spans": [...], "metrics": {...}}``, or ``None``
    when the task produced neither (no ctx propagated and no registry
    activity), so idle tasks ship no extra bytes.  The metrics delta is
    captured regardless of tracing — counters merge back even on untraced
    runs; only span recording is gated on the propagated ctx.
    """

    __slots__ = ("_name", "_ctx", "_attrs", "_was_enabled", "_ctx_token",
                 "_metrics_before", "_spans_before", "_span_cm", "_span",
                 "telemetry")

    def __init__(self, name: str, ctx: tuple[str, str] | None, **attrs: Any) -> None:
        self._name = name
        self._ctx = ctx
        self._attrs = attrs
        self.telemetry: dict | None = None

    def __enter__(self) -> "capture_worker":
        from .metrics import global_registry

        self._metrics_before = global_registry().snapshot()
        self._was_enabled = _TRACER.enabled
        self._ctx_token = None
        self._span_cm = None
        self._span = None
        # Baseline, not drain-everything: a forked worker inherits the
        # parent tracer's span list wholesale, and shipping those back
        # would duplicate every pre-fork span on ingest.  Only spans
        # recorded inside this bracket belong to the task.
        self._spans_before = len(_TRACER._spans)
        if self._ctx is not None:
            _TRACER.enabled = True
            self._ctx_token = _CURRENT.set((self._ctx[0], self._ctx[1]))
        if _TRACER.enabled:
            self._span_cm = _TRACER.span(f"worker.{self._name}", **self._attrs)
            self._span = self._span_cm.__enter__()
        return self

    def set_attr(self, key: str, value: Any) -> None:
        if self._span is not None:
            self._span.set_attr(key, value)

    def __exit__(self, exc_type, exc, tb) -> None:
        from .metrics import global_registry, snapshot_delta

        if self._span_cm is not None:
            self._span_cm.__exit__(exc_type, exc, tb)
        if self._ctx_token is not None:
            _CURRENT.reset(self._ctx_token)
        if self._span_cm is not None:
            with _TRACER._lock:
                spans = _TRACER._spans[self._spans_before:]
                del _TRACER._spans[self._spans_before:]
        else:
            spans = []
        _TRACER.enabled = self._was_enabled
        metrics = snapshot_delta(global_registry().snapshot(), self._metrics_before)
        if spans or metrics:
            self.telemetry = {
                "spans": [span.to_dict() for span in spans],
                "metrics": metrics,
            }
        return None


def ingest_telemetry(telemetry: Mapping[str, Any] | None) -> None:
    """Parent-side fold of one worker's :class:`capture_worker` payload:
    spans into the tracer, metric deltas into the global registry."""
    if not telemetry:
        return
    spans = telemetry.get("spans")
    if spans:
        _TRACER.ingest(spans)
    metrics = telemetry.get("metrics")
    if metrics:
        from .metrics import global_registry

        global_registry().merge_snapshot(metrics)
