"""repro.obs — the telemetry spine: spans, metrics, exposition.

Three pieces, importable with zero repro dependencies (stdlib only):

* :mod:`~repro.obs.trace` — structured span tracer with contextvar
  nesting, cross-process propagation, and Chrome ``trace_event`` export;
* :mod:`~repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms in mergeable registries;
* :mod:`~repro.obs.exposition` — Prometheus text + JSON renderers and a
  stdlib HTTP endpoint.

See README "Observability" for the naming scheme and the metrics table.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    snapshot_delta,
)
from .trace import (
    Span,
    Tracer,
    capture_worker,
    disable_tracing,
    enable_tracing,
    get_tracer,
    ingest_telemetry,
    propagation_context,
    span,
    tracing_enabled,
)
from .exposition import MetricsServer, render_json, render_prometheus

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
    "capture_worker",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "global_registry",
    "ingest_telemetry",
    "propagation_context",
    "render_json",
    "render_prometheus",
    "snapshot_delta",
    "span",
    "tracing_enabled",
]
