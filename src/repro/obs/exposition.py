"""Live exposition: Prometheus text format, JSON snapshots, and an
embeddable HTTP endpoint.

The renderers work off registry *snapshots* (plain dicts), so the same
code serves a live registry, a merged multi-process snapshot, or a
snapshot loaded back from a benchmark artifact.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Dotted registry names → Prometheus-legal: dots become underscores."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping[str, dict]) -> str:
    """A registry snapshot in Prometheus text exposition format 0.0.4.

    Histograms render cumulatively (``_bucket{le="..."}`` plus ``_sum``
    and ``_count``) so standard ``histogram_quantile`` queries work.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        prom = _prom_name(name)
        kind = data["kind"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {prom} {kind}")
            lines.append(f"{prom} {_fmt(data['value'])}")
        else:
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"], data["buckets"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
                )
            cumulative += data["buckets"][len(data["bounds"])]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_fmt(data['sum'])}")
            lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: Mapping[str, dict], indent: int | None = None) -> str:
    """A registry snapshot as JSON; histograms keep their summary
    percentiles (p50/p95/p99) but drop the raw bucket vectors — the JSON
    endpoint is for dashboards and assertions, the Prometheus one for
    scraping."""
    out: dict[str, dict] = {}
    for name in sorted(snapshot):
        data = snapshot[name]
        if data["kind"] == "histogram":
            out[name] = {
                "kind": "histogram",
                "count": data["count"],
                "sum": data["sum"],
                "min": data.get("min", 0.0),
                "max": data.get("max", 0.0),
                "p50": data.get("p50", 0.0),
                "p95": data.get("p95", 0.0),
                "p99": data.get("p99", 0.0),
            }
        else:
            out[name] = {"kind": data["kind"], "value": data["value"]}
    return json.dumps(out, indent=indent)


class MetricsServer:
    """A tiny stdlib HTTP server exposing one snapshot callable.

    ``GET /metrics`` → Prometheus text, ``GET /metrics.json`` → JSON.
    Pass ``port=0`` to bind an ephemeral port (read it back from
    ``server.port``).  The snapshot function runs per request, so scrapes
    always see current values.
    """

    def __init__(self, snapshot_fn, host: str = "127.0.0.1", port: int = 0) -> None:
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    snapshot = snapshot_fn()
                    if self.path.startswith("/metrics.json"):
                        body = render_json(snapshot, indent=1).encode()
                        ctype = "application/json"
                    elif self.path.startswith("/metrics"):
                        body = render_prometheus(snapshot).encode()
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # surface, don't hang the scraper
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request stderr
                return

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """Base URL; append ``/metrics`` or ``/metrics.json``."""
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
