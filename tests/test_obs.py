"""The observability layer: spans, cross-process metrics, live exposition.

These tests pin the contracts ISSUE 10 introduces:

* **metrics registry** — counters/gauges/fixed-bucket histograms with
  sample-free percentiles, snapshot/merge/delta algebra (the pool's
  worker→parent merge path), and the process-global registry;
* **span tracer** — context-manager nesting, counter-delta attachment,
  Chrome ``trace_event`` export, and a sub-microsecond disabled path;
* **cross-process propagation** — a sharded ``pbsm_spill`` join under a
  live WorkerPool (fork AND spawn) renders as ONE connected span tree,
  with every ``worker.*`` span a descendant of the parent's
  ``join.flush`` span;
* **exactly-once pool retry** — results that landed before a worker
  crash are kept, only the dead tasks rerun (the stats double-count
  regression);
* **serving exposition** — ``ServingSession.dump_metrics`` merges the
  query/join/global registries into one snapshot, served as Prometheus
  text and JSON over HTTP;
* **mapped scalar maintenance** — ``DiskRTree(mapped=True)`` insert and
  delete never decode object payloads and stay bit-parity with the
  object-payload mode (ROADMAP zero-copy item (b)).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import random
import signal
import time
import urllib.request

import pytest

from conftest import make_items
from repro import (
    AABB,
    JoinSession,
    SelfJoinSpec,
    ServingSession,
    ShardedJoinExecutor,
    UniformGrid,
    WorkerPool,
    shutdown_default_pool,
)
from repro.geometry.aabb import AABB as _AABB
from repro.indexes.disk_rtree import DiskRTree
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    Span,
    capture_worker,
    disable_tracing,
    enable_tracing,
    get_tracer,
    global_registry,
    ingest_telemetry,
    propagation_context,
    snapshot_delta,
    span,
    tracing_enabled,
)

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts with a quiet tracer and a clear global registry."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.clear()
    global_registry().clear()
    yield
    tracer.enabled = was_enabled
    tracer.clear()
    global_registry().clear()


def build_grid(items):
    grid = UniformGrid(universe=UNIVERSE, cell_size=5.0)
    grid.bulk_load(items)
    return grid


# -- the metrics registry ------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.count")
        counter.inc()
        counter.inc(4)
        assert registry.value("x.count") == 5
        gauge = registry.gauge("x.depth")
        gauge.track_max(3)
        gauge.track_max(1)
        assert registry.value("x.depth") == 3
        # get-or-create returns the same object
        assert registry.counter("x.count") is counter

    def test_histogram_percentiles_without_samples(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x.seconds")
        for value in (0.001, 0.002, 0.004, 0.008, 0.1):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == pytest.approx(0.115)
        digest = hist.summary()
        assert digest["min"] == pytest.approx(0.001)
        assert digest["max"] == pytest.approx(0.1)
        # Interpolated from buckets, clamped to the observed range.
        assert digest["min"] <= digest["p50"] <= digest["p99"] <= digest["max"]

    def test_merge_snapshot_adds_and_gauges_fold_max(self):
        a = MetricsRegistry()
        a.counter("c").inc(3)
        a.gauge("g").set(7)
        a.histogram("h").observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        b.gauge("g").set(4)
        b.histogram("h").observe(1.5)
        b.merge_snapshot(a.snapshot())
        assert b.value("c") == 5
        assert b.value("g") == 7  # max-fold
        assert b.get("h").count == 2

    def test_snapshot_delta_drops_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("stable").inc(10)
        before = registry.snapshot()
        registry.counter("moved").inc(2)
        delta = snapshot_delta(registry.snapshot(), before)
        assert "moved" in delta
        assert "stable" not in delta
        assert delta["moved"]["value"] == 2


# -- the span tracer -----------------------------------------------------------


class TestTracer:
    def test_nesting_and_counter_deltas(self):
        from repro.instrumentation.counters import Counters

        tracer = enable_tracing()
        counters = Counters()
        with span("outer", kind="test") as outer:
            with span("inner", counters=counters):
                counters.node_tests += 7
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["inner"].attrs["counters.node_tests"] == 7
        assert spans["outer"].attrs["kind"] == "test"
        assert spans["outer"].end_ns >= spans["outer"].start_ns

    def test_disabled_tracer_records_nothing(self):
        disable_tracing()
        assert not tracing_enabled()
        with span("ghost") as ghost:
            ghost.set_attr("ignored", 1)  # no-op handle
        assert get_tracer().spans() == []
        assert propagation_context() is None

    def test_chrome_export_roundtrip(self, tmp_path):
        enable_tracing()
        with span("parent"):
            with span("child"):
                pass
        path = tmp_path / "trace.json"
        events = get_tracer().export_chrome(str(path))
        assert len(events) == 2
        loaded = json.loads(path.read_text())
        assert {e["name"] for e in loaded["traceEvents"]} == {"parent", "child"}
        for event in loaded["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_capture_worker_roundtrip(self):
        # Parent side: open a span, capture its context.
        tracer = enable_tracing()
        with span("flush") as flush_span:
            ctx = propagation_context()
        assert ctx is not None
        tracer.clear()

        # "Worker" side: adopt the context, do metered work.
        disable_tracing()
        with capture_worker("shard", ctx, mode="test") as cap:
            global_registry().counter("worker.widgets").inc(2)
            cap.set_attr("chunk", 5)
        assert not tracing_enabled()  # restored
        telemetry = cap.telemetry
        assert telemetry is not None
        assert telemetry["metrics"]["worker.widgets"]["value"] == 2
        (worker_span,) = telemetry["spans"]
        assert worker_span["name"] == "worker.shard"
        assert worker_span["parent_id"] == flush_span.span_id
        assert worker_span["attrs"]["chunk"] == 5

        # Parent side again: fold it back.  (Clear first: in-process the
        # "worker" charged this same registry; a real worker charges its
        # own process's registry and only the delta crosses back.)
        global_registry().clear()
        enable_tracing()
        ingest_telemetry(telemetry)
        assert global_registry().value("worker.widgets") == 2
        (ingested,) = get_tracer().spans()
        assert ingested.parent_id == flush_span.span_id

    def test_capture_worker_ships_only_post_fork_spans(self):
        # A forked worker inherits the parent's span list; the bracket must
        # ship only spans recorded inside it, or ingest duplicates them.
        tracer = enable_tracing()
        with span("pre.fork"):
            pass
        with span("flush"):
            ctx = propagation_context()
        assert len(tracer.spans()) == 2
        with capture_worker("shard", ctx) as cap:
            pass
        shipped = [s["name"] for s in cap.telemetry["spans"]]
        assert shipped == ["worker.shard"]
        # the parent-side spans are still exactly where they were
        local = [s.name for s in tracer.spans()]
        assert local.count("pre.fork") == 1
        assert local.count("flush") == 1
        assert "worker.shard" not in local


# -- cross-process span trees --------------------------------------------------


@pytest.fixture(params=["fork", "spawn"])
def pool(request):
    if request.param not in multiprocessing.get_all_start_methods():
        pytest.skip(f"platform lacks the {request.param!r} start method")
    shutdown_default_pool()
    p = WorkerPool(workers=2, context=request.param)
    yield p
    p.close()


class TestPropagation:
    def test_sharded_spill_join_is_one_span_tree(self, pool):
        """The acceptance scenario: a sharded pbsm_spill join under a live
        pool produces ONE connected trace with every worker span a
        descendant of the join.flush span."""
        items = make_items(1400, seed=83)
        tracer = enable_tracing()
        tracer.clear()
        session = JoinSession(
            budget=100_000,
            executor=ShardedJoinExecutor(workers=2, min_shard=64, pool=pool),
        )
        try:
            session.run(SelfJoinSpec(items))
            spans = tracer.spans()
        finally:
            session.close()
            disable_tracing()
        assert session.stats.strategy_runs.get("pbsm_spill") == 1

        assert spans, "tracing produced no spans"
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1, f"disconnected traces: {trace_ids}"

        by_id = {s.span_id: s for s in spans}
        flush_spans = [s for s in spans if s.name == "join.flush"]
        assert len(flush_spans) == 1
        flush = flush_spans[0]

        worker_spans = [s for s in spans if s.name.startswith("worker.")]
        assert worker_spans, "no worker spans were merged back"
        assert {s.name for s in worker_spans} == {"worker.merge_run"}
        assert {s.pid for s in worker_spans} != {os.getpid()}

        def ancestor_ids(node: Span) -> set[str]:
            seen = set()
            while node.parent_id is not None:
                assert node.parent_id in by_id, (
                    f"span {node.name} has dangling parent {node.parent_id}"
                )
                node = by_id[node.parent_id]
                seen.add(node.span_id)
            return seen

        for worker_span in worker_spans:
            assert flush.span_id in ancestor_ids(worker_span)
        # The partition pass traced too, inside the same tree.
        assert any(s.name == "join.spill.partition" for s in spans)


# -- exactly-once retry --------------------------------------------------------


def _bomb_task(log_path: str, flag_path: str, index: int, bomb_index: int):
    with open(log_path, "a") as fh:
        fh.write(f"{index}\n")
        fh.flush()
        os.fsync(fh.fileno())
    if index == bomb_index:
        deadline = time.monotonic() + 30.0
        # Wait for every other task's log line so their results are safely
        # delivered before the crash, then die without creating a corpse
        # note twice: the flag file arms exactly one detonation.
        while time.monotonic() < deadline:
            with open(log_path) as check:
                lines = {line.strip() for line in check}
            if lines >= {"0", "1"}:
                break
            time.sleep(0.01)
        if not os.path.exists(flag_path):
            with open(flag_path, "w"):
                pass
            time.sleep(0.5)  # let the finished results drain to the parent
            os.kill(os.getpid(), signal.SIGKILL)
    return index * 10


class TestExactlyOnceRetry:
    def test_completed_tasks_are_not_rerun_after_crash(self, tmp_path):
        """The stats double-count regression: results that landed before
        the pool broke are kept; only the dead task reruns."""
        log_path = str(tmp_path / "executions.log")
        flag_path = str(tmp_path / "armed.flag")
        open(log_path, "w").close()
        with WorkerPool(workers=2, context="fork") as pool:
            tasks = [(log_path, flag_path, i, 2) for i in range(3)]
            results = pool._map(_bomb_task, tasks)
        assert results == [0, 10, 20]
        with open(log_path) as fh:
            executed = [int(line) for line in fh if line.strip()]
        # 0 and 1 completed before the crash: executed exactly once each.
        assert executed.count(0) == 1
        assert executed.count(1) == 1
        # the bomb task ran, died, and was retried exactly once
        assert executed.count(2) == 2

    def test_join_stats_exact_after_worker_crash(self):
        """End-to-end: a crash-retried sharded spill join reports the same
        pair count the no-pool baseline reports (no double merge)."""
        items = make_items(1400, seed=83)
        baseline = JoinSession(budget=100_000)
        expected = sorted(baseline.run(SelfJoinSpec(items)))
        expected_pairs = baseline.stats.pairs
        with WorkerPool(workers=2, context="fork") as pool:
            session = JoinSession(
                budget=100_000,
                executor=ShardedJoinExecutor(workers=2, min_shard=64, pool=pool),
            )
            try:
                assert sorted(session.run(SelfJoinSpec(items))) == expected
                first_run_pairs = session.stats.pairs
                assert first_run_pairs == expected_pairs
                for process in list(pool._executor._processes.values()):
                    os.kill(process.pid, signal.SIGKILL)
                time.sleep(0.1)
                assert sorted(session.run(SelfJoinSpec(items))) == expected
                assert session.stats.pairs == 2 * expected_pairs
            finally:
                session.close()


# -- serving exposition --------------------------------------------------------


class TestServingExposition:
    def _run_workload(self, serving_kwargs=None):
        items = make_items(600, seed=31)
        grid = build_grid(items)

        async def workload():
            async with ServingSession(grid, **(serving_kwargs or {})) as serving:
                rng = random.Random(5)
                for _ in range(3):
                    lo = [rng.uniform(0.0, 95.0) for _ in range(3)]
                    hi = [c + rng.uniform(1.0, 6.0) for c in lo]
                    await serving.range_query(AABB(lo, hi))
                    await serving.knn(
                        tuple(rng.uniform(0.0, 100.0) for _ in range(3)), 4
                    )
                await serving.join(SelfJoinSpec(tuple(items)))
                snapshot = serving.dump_metrics()
                text = serving.metrics_text()
                payload = json.loads(serving.metrics_json())
                return snapshot, text, payload

        return asyncio.run(workload())

    def test_dump_metrics_merges_all_registries(self, pool):
        snapshot, text, payload = self._run_workload({"pool": pool, "workers": 2})
        # session registries
        assert snapshot["query.flushes"]["value"] >= 1
        assert snapshot["join.flushes"]["value"] >= 1
        assert snapshot["query.flush.seconds"]["count"] >= 1
        # the async tier attributed every flush to a cause
        triggers = [k for k in snapshot if k.startswith("serving.flush.trigger.")]
        assert triggers
        # Prometheus text: sanitized names, histogram suffixes
        assert "query_flushes" in text
        assert 'query_flush_seconds_bucket{le="+Inf"}' in text
        assert "query_flush_seconds_count" in text
        # JSON keeps the digest, drops the bucket vectors
        assert "p99" in payload["query.flush.seconds"]
        assert "buckets" not in payload["query.flush.seconds"]

    def test_http_endpoints_serve_merged_snapshot(self):
        snapshot, _, _ = self._run_workload()
        registry = MetricsRegistry()
        registry.merge_snapshot(snapshot)
        server = MetricsServer(registry.snapshot)
        try:
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                text = response.read().decode()
            assert "query_flushes" in text
            with urllib.request.urlopen(f"{server.url}/metrics.json") as response:
                payload = json.loads(response.read().decode())
            assert payload["query.flushes"]["value"] >= 1
        finally:
            server.close()

    def test_pool_merges_worker_metrics_into_parent_registry(self, pool):
        """2+ workers, one merged snapshot: worker-side spill reads surface
        in the parent's global registry via the telemetry merge."""
        items = make_items(1400, seed=83)
        session = JoinSession(
            budget=100_000,
            executor=ShardedJoinExecutor(workers=2, min_shard=64, pool=pool),
        )
        try:
            session.run(SelfJoinSpec(items))
        finally:
            session.close()
        # Workers read spilled runs; their registry deltas merged back here.
        assert global_registry().value("spill.bytes_read") > 0
        assert global_registry().value("spill.bytes_written") > 0


# -- mapped scalar maintenance (ROADMAP zero-copy item (b)) --------------------


class TestMappedScalarMaintenance:
    @staticmethod
    def _rand_box(rng):
        lo = [rng.uniform(0, 100) for _ in range(3)]
        hi = [l + rng.uniform(0, 5) for l in lo]
        return _AABB(tuple(lo), tuple(hi))

    def test_scalar_insert_delete_never_decode_objects(self, monkeypatch):
        calls = []
        original = DiskRTree._decode_node

        def spy(self, buf):
            calls.append(1)
            return original(self, buf)

        monkeypatch.setattr(DiskRTree, "_decode_node", spy)
        rng = random.Random(11)
        tree = DiskRTree(max_entries=8, mapped=True)
        live = []
        for i in range(300):
            box = self._rand_box(rng)
            tree.insert(i, box)
            live.append((i, box))
            if len(live) > 40 and rng.random() < 0.4:
                eid, gone = live.pop(rng.randrange(len(live)))
                tree.delete(eid, gone)
        assert calls == [], "mapped scalar maintenance decoded object payloads"
        tree.close()

    def test_mapped_scalar_parity_with_object_mode(self):
        rng = random.Random(7)
        plain = DiskRTree(max_entries=8)
        mapped = DiskRTree(max_entries=8, mapped=True)
        live = []
        for i in range(400):
            box = self._rand_box(rng)
            plain.insert(i, box)
            mapped.insert(i, box)
            live.append((i, box))
            if len(live) > 50 and rng.random() < 0.4:
                eid, gone = live.pop(rng.randrange(len(live)))
                plain.delete(eid, gone)
                mapped.delete(eid, gone)
        try:
            assert len(plain) == len(mapped)
            assert plain.height == mapped.height
            assert plain.page_count() == mapped.page_count()
            query = _AABB((10.0, 10.0, 10.0), (60.0, 60.0, 60.0))
            assert sorted(plain.range_query(query)) == sorted(
                mapped.range_query(query)
            )
            assert plain.knn((30.0, 30.0, 30.0), 10) == mapped.knn(
                (30.0, 30.0, 30.0), 10
            )
            # The tree-walk charges match structure for structure.
            assert plain.counters.node_tests == mapped.counters.node_tests
            assert plain.counters.inserts == mapped.counters.inserts
            assert plain.counters.deletes == mapped.counters.deletes
        finally:
            mapped.close()

    def test_delete_raises_for_missing_element(self):
        tree = DiskRTree(max_entries=8, mapped=True)
        box = _AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        tree.insert(1, box)
        with pytest.raises(KeyError):
            tree.delete(2, box)
        with pytest.raises(KeyError):
            tree.delete(1, _AABB((5.0, 5.0, 5.0), (6.0, 6.0, 6.0)))
        tree.delete(1, box)
        assert len(tree) == 0
        with pytest.raises(KeyError):
            tree.delete(1, box)
        tree.close()


# -- report rendering over the registry ----------------------------------------


class TestReportsOverRegistry:
    def test_serving_line_renders_from_registry(self):
        from repro.analysis.session_report import query_session_report

        items = make_items(300, seed=13)
        grid = build_grid(items)

        async def workload():
            async with ServingSession(grid) as serving:
                for _ in range(2):
                    await serving.range_query(
                        AABB((0.0, 0.0, 0.0), (50.0, 50.0, 50.0))
                    )
                return query_session_report(serving.queries)

        report = asyncio.run(workload())
        assert "serving: triggers=" in report
        assert "queue-high-water=" in report
        assert "flush-wall=" in report
        # registry and stats agree on the rendered values
        line = [l for l in report.splitlines() if l.startswith("serving:")][0]
        stats_triggers = sum(
            int(part.split(":")[1])
            for part in line.split("triggers=")[1].split(" ")[0].split(",")
        )
        assert stats_triggers >= 1
