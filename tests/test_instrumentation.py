"""Counters, cost models and phase timer."""

import pytest

from repro.instrumentation.counters import Counters
from repro.instrumentation.costmodel import (
    ELEM_TESTS,
    READING,
    REMAINING,
    TREE_TESTS,
    DiskCostModel,
    MemoryCostModel,
    TimeBreakdown,
)
from repro.instrumentation.profiler import PhaseTimer


class TestCounters:
    def test_defaults_zero(self):
        assert Counters().total_intersection_tests() == 0

    def test_snapshot_diff(self):
        counters = Counters()
        counters.node_tests = 5
        before = counters.snapshot()
        counters.node_tests += 3
        counters.elem_tests += 2
        delta = counters.diff(before)
        assert delta.node_tests == 3
        assert delta.elem_tests == 2
        assert before.node_tests == 5  # snapshot unaffected

    def test_merge(self):
        a = Counters(node_tests=1, pages_read=2)
        b = Counters(node_tests=10, heap_ops=4)
        a.merge(b)
        assert a.node_tests == 11
        assert a.pages_read == 2
        assert a.heap_ops == 4

    def test_reset(self):
        counters = Counters(elem_tests=9, bytes_touched=100)
        counters.reset()
        assert counters.as_dict() == Counters().as_dict()

    def test_str_shows_only_nonzero(self):
        text = str(Counters(elem_tests=3))
        assert "elem_tests=3" in text
        assert "node_tests" not in text


class TestTimeBreakdown:
    def test_fractions(self):
        breakdown = TimeBreakdown({READING: 1.0, TREE_TESTS: 3.0})
        assert breakdown.total() == 4.0
        assert breakdown.fraction(READING) == 0.25
        assert breakdown.percent(TREE_TESTS) == 75.0

    def test_empty_fraction_zero(self):
        assert TimeBreakdown().fraction(READING) == 0.0

    def test_coarse_two_categories(self):
        breakdown = TimeBreakdown({READING: 1.0, TREE_TESTS: 2.0, ELEM_TESTS: 1.0})
        coarse = breakdown.coarse()
        assert coarse.seconds[READING] == 1.0
        assert coarse.seconds["computations"] == 3.0

    def test_merged(self):
        a = TimeBreakdown({READING: 1.0})
        b = TimeBreakdown({READING: 2.0, REMAINING: 1.0})
        merged = a.merged(b)
        assert merged.seconds[READING] == 3.0
        assert merged.seconds[REMAINING] == 1.0

    def test_render_contains_categories(self):
        text = TimeBreakdown({READING: 1.0, TREE_TESTS: 1.0}).render("title")
        assert "title" in text
        assert READING in text
        assert "total" in text


class TestMemoryCostModel:
    def test_attribution(self):
        counters = Counters(
            node_tests=100, elem_tests=50, pointer_follows=10, bytes_touched=6400
        )
        breakdown = MemoryCostModel().breakdown(counters)
        assert breakdown.seconds[TREE_TESTS] == pytest.approx(100 * 12e-9)
        assert breakdown.seconds[ELEM_TESTS] == pytest.approx(50 * 12e-9)
        assert breakdown.seconds[READING] == pytest.approx(100 * 1e-9)  # 100 lines
        assert breakdown.seconds[REMAINING] > 0

    def test_refine_tests_priced_higher(self):
        plain = MemoryCostModel().breakdown(Counters(elem_tests=10)).seconds[ELEM_TESTS]
        refine = MemoryCostModel().breakdown(Counters(refine_tests=10)).seconds[ELEM_TESTS]
        assert refine > plain

    def test_compute_dominates_reading_for_tree_workload(self):
        """The Figure 3 shape: in memory, intersection tests dominate."""
        # A realistic node visit: 16 entries tested, ~900 bytes touched.
        counters = Counters(node_tests=16_000, elem_tests=8_000, bytes_touched=900_000)
        breakdown = MemoryCostModel().breakdown(counters)
        assert breakdown.fraction(READING) < 0.15
        tests = breakdown.fraction(TREE_TESTS) + breakdown.fraction(ELEM_TESTS)
        assert tests > 0.7


class TestDiskCostModel:
    def test_page_read_random_vs_sequential(self):
        model = DiskCostModel()
        random = model.page_read_seconds(100)
        sequential = model.page_read_seconds(100, sequential=True)
        assert random > sequential

    def test_reading_dominates_on_disk(self):
        """The Figure 2 shape: on disk, reading data dominates."""
        counters = Counters(
            pages_read=1000, node_tests=16_000, elem_tests=8_000, bytes_touched=900_000
        )
        breakdown = DiskCostModel().breakdown(counters)
        assert breakdown.fraction(READING) > 0.9

    def test_zero_pages_means_cpu_only(self):
        counters = Counters(node_tests=100)
        breakdown = DiskCostModel().breakdown(counters)
        assert breakdown.seconds[READING] == 0.0


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.count("a") == 2
        assert timer.count("b") == 1
        assert timer.total() >= timer.seconds("a")

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        timer.reset()
        assert timer.total() == 0.0
        assert timer.count("x") == 0

    def test_render(self):
        timer = PhaseTimer()
        with timer.phase("build"):
            pass
        assert "build" in timer.render("header")
