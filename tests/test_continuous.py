"""Continuous queries over moving objects, pinned by a per-tick recompute oracle.

The contract under test: for **every** maintenance policy and **every** spec
kind, the delta stream a :class:`~repro.continuous.ContinuousSession` emits
is *exact* — at every tick

* the subscription's live result equals a full recompute against the
  authoritative state (the session's :meth:`oracle_result`, a throwaway
  rebuild), and
* folding the accumulated deltas into the initial result reproduces that
  same live result (no delta lost, duplicated or misordered).

Workloads cover the shapes the issue names: uniform drift, clustered
teleports, insert/delete churn, and zero-motion ticks — both as seeded
deterministic runs (the policy × kind × workload grid) and as
hypothesis-driven random update programs under the derandomized CI profile.
"""

from __future__ import annotations

import asyncio
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import continuous_report, session_report
from repro.continuous import (
    ContinuousJoinSpec,
    ContinuousKNNQuery,
    ContinuousRangeQuery,
    ContinuousSession,
    Delete,
    Delta,
    Insert,
    knn_ids,
    normalize_updates,
)
from repro.geometry.aabb import AABB
from repro.joins.iterated import IteratedSelfJoin, PairDelta
from repro.serving import ContinuousServing
from tests.conftest import UNIVERSE_3D, make_items

pytestmark = pytest.mark.continuous

POLICIES = ["recompute", "incremental", "predictive"]
KINDS = ["range", "knn", "join"]
WORKLOADS = ["drift", "teleport", "churn", "still"]


# -- workload generators -------------------------------------------------------


def _boxed(rng: random.Random, universe: AABB = UNIVERSE_3D, extent: float = 4.0) -> AABB:
    lo = [rng.uniform(u, v - extent) for u, v in zip(universe.lo, universe.hi)]
    return AABB(lo, [c + rng.uniform(0.3, extent) for c in lo])


def _shift(box: AABB, offset: list[float], universe: AABB = UNIVERSE_3D) -> AABB:
    lo = list(box.lo)
    hi = list(box.hi)
    for axis, delta in enumerate(offset):
        delta = max(universe.lo[axis] - lo[axis], min(delta, universe.hi[axis] - hi[axis]))
        lo[axis] += delta
        hi[axis] += delta
    return AABB(lo, hi)


def workload_updates(name: str, state: dict[int, AABB], rng: random.Random, tick: int, next_eid: list):
    """One tick's raw updates for a named workload shape."""
    updates: list = []
    eids = sorted(state)
    if name == "still":
        # Motion on even ticks only: odd ticks are zero-motion and must be
        # answered entirely from safe regions.
        if tick % 2 == 1:
            return updates
        name = "drift"
    if name == "drift":
        for eid in rng.sample(eids, k=max(1, len(eids) // 10)):
            offset = [rng.uniform(-0.4, 0.4) for _ in range(3)]
            updates.append((eid, state[eid], _shift(state[eid], offset)))
    elif name == "teleport":
        # A clustered subset jumps to one random far-away site.
        cluster = rng.sample(eids, k=max(1, len(eids) // 8))
        site = [rng.uniform(10, 80) for _ in range(3)]
        for eid in cluster:
            target = [c + rng.uniform(-3, 3) for c in site]
            box = state[eid]
            offset = [t - l for t, l in zip(target, box.lo)]
            updates.append((eid, box, _shift(box, offset)))
    elif name == "churn":
        for eid in rng.sample(eids, k=max(1, len(eids) // 12)):
            offset = [rng.uniform(-1.5, 1.5) for _ in range(3)]
            updates.append((eid, state[eid], _shift(state[eid], offset)))
        for _ in range(rng.randint(1, 3)):
            eid = next_eid[0]
            next_eid[0] += 1
            updates.append(Insert(eid, _boxed(rng)))
        moved = {u[0] for u in updates if isinstance(u, tuple)}
        victims = [e for e in eids if e not in moved]
        for eid in rng.sample(victims, k=min(2, len(victims))):
            updates.append(Delete(eid))
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise AssertionError(name)
    return updates


def make_specs(kind: str):
    if kind == "range":
        return [
            ContinuousRangeQuery(AABB((20, 20, 20), (60, 60, 60))),
            ContinuousRangeQuery(AABB((0, 0, 0), (15, 15, 15)), tag="corner"),
        ]
    if kind == "knn":
        return [
            ContinuousKNNQuery((50.0, 50.0, 50.0), k=6),
            ContinuousKNNQuery((5.0, 90.0, 40.0), k=3, tag="edge"),
        ]
    return [ContinuousJoinSpec(epsilon=1.5), ContinuousJoinSpec(epsilon=0.0, tag="touch")]


def assert_exact(session: ContinuousSession, sub) -> None:
    """The two-sided oracle: live result == recompute, accumulation == live."""
    oracle = session.oracle_result(sub)
    if sub.kind == "knn":
        assert sub.result == oracle  # exact ordered (distance, id) lists
        accumulated = set(knn_ids(sub.initial))
    else:
        assert sub.result == oracle
        accumulated = set(sub.initial)
    for delta in sub.deltas:
        accumulated = delta.apply(accumulated)  # raises on any inexact delta
    assert accumulated == sub.result_set()


def drive(session: ContinuousSession, subs, workload: str, ticks: int, seed: int) -> None:
    rng = random.Random(seed)
    next_eid = [10_000]
    for tick in range(ticks):
        state = dict(session.state_items())
        updates = workload_updates(workload, state, rng, tick, next_eid)
        session.tick(updates)
        for sub in subs:
            assert_exact(session, sub)


# -- the (policy × kind × workload) oracle grid --------------------------------


class TestDeltaStreamsExact:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_kind_workload(self, policy, kind, workload):
        items = make_items(150, seed=11)
        session = ContinuousSession(items, UNIVERSE_3D, policy=policy)
        subs = [session.subscribe(spec) for spec in make_specs(kind)]
        drive(session, subs, workload, ticks=10, seed=17)
        assert session.stats.policy_routes.get(policy, 0) > 0

    @pytest.mark.parametrize("kind", KINDS)
    def test_auto_planner_stays_exact(self, kind):
        """Auto routing may switch policies tick-to-tick (adopt/forget
        churn); exactness must survive every handoff."""
        items = make_items(120, seed=12)
        session = ContinuousSession(items, UNIVERSE_3D)
        subs = [session.subscribe(spec) for spec in make_specs(kind)]
        for workload, seed in (("drift", 3), ("teleport", 4), ("churn", 5), ("still", 6)):
            drive(session, subs, workload, ticks=4, seed=seed)
        assert sum(session.stats.policy_routes.values()) == session.stats.deltas

    def test_mixed_spec_kinds_one_session(self):
        items = make_items(100, seed=13)
        session = ContinuousSession(items, UNIVERSE_3D)
        subs = [session.subscribe(s) for kind in KINDS for s in make_specs(kind)]
        drive(session, subs, "churn", ticks=8, seed=23)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_motion_ticks_emit_empty_deltas(self, policy):
        items = make_items(80, seed=14)
        session = ContinuousSession(items, UNIVERSE_3D, policy=policy)
        subs = [session.subscribe(s) for kind in KINDS for s in make_specs(kind)]
        before_hits = session.counters.safe_region_hits
        deltas = session.tick([])
        assert all(delta.is_empty for delta in deltas.values())
        for sub in subs:
            assert_exact(session, sub)
        if policy != "recompute":
            assert session.counters.safe_region_hits > before_hits

    def test_lur_backing_predictive(self):
        items = make_items(90, seed=15)
        session = ContinuousSession(
            items, UNIVERSE_3D, policy="predictive", predictive_backing="lur"
        )
        subs = [session.subscribe(s) for kind in KINDS for s in make_specs(kind)]
        drive(session, subs, "drift", ticks=8, seed=31)

    def test_knn_ties_invalidate_at_equal_distance(self):
        """A mover landing exactly at the kth distance must displace the
        higher-id member under the (distance, id) order — the ``<=`` in the
        safe-region check."""
        # Point items at known distances from the query point.
        items = [
            (1, AABB((10, 0, 0), (10, 0, 0))),
            (2, AABB((20, 0, 0), (20, 0, 0))),
            (9, AABB((30, 0, 0), (30, 0, 0))),
            (4, AABB((90, 0, 0), (90, 0, 0))),
        ]
        session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
        sub = session.subscribe(ContinuousKNNQuery((0.0, 0.0, 0.0), k=3))
        assert knn_ids(sub.result) == {1, 2, 9}
        # id 4 moves to distance 30 — exactly d_k.  (30.0, 4) < (30.0, 9).
        session.tick([(4, items[3][1], AABB((30, 0, 0), (30, 0, 0)))])
        assert_exact(session, sub)
        assert knn_ids(sub.result) == {1, 2, 4}

    def test_result_shorter_than_k_grows_with_inserts(self):
        items = [(1, AABB((5, 5, 5), (6, 6, 6))), (2, AABB((40, 40, 40), (41, 41, 41)))]
        session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
        sub = session.subscribe(ContinuousKNNQuery((0.0, 0.0, 0.0), k=5))
        assert len(sub.result) == 2
        session.tick([Insert(3, AABB((70, 70, 70), (71, 71, 71)))])
        assert_exact(session, sub)
        assert len(sub.result) == 3

    def test_join_refine_callable_consulted_on_reprobe(self):
        """The refine predicate reads *current* geometry: a pair inside the
        box filter but failing refine must stay out after motion."""
        boxes = {}

        def parity_refine(a: int, b: int) -> bool:
            return (a + b) % 2 == 0

        items = make_items(60, seed=16)
        boxes.update(dict(items))
        session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
        sub = session.subscribe(ContinuousJoinSpec(epsilon=2.0, refine=parity_refine))
        assert all((a + b) % 2 == 0 for a, b in sub.result)
        drive(session, [sub], "drift", ticks=6, seed=41)
        assert all((a + b) % 2 == 0 for a, b in sub.result)


# -- hypothesis: random update programs ----------------------------------------


def _coords(draw, lo=0.0, hi=92.0):
    return [
        draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
        for _ in range(3)
    ]


@st.composite
def update_programs(draw):
    """(initial items, list of ticks, each a list of raw updates)."""
    n = draw(st.integers(min_value=4, max_value=40))
    items = []
    for eid in range(n):
        lo = _coords(draw)
        extent = draw(st.floats(min_value=0.1, max_value=6.0))
        items.append((eid, AABB(lo, [c + extent for c in lo])))
    alive = {eid for eid, _ in items}
    boxes = dict(items)
    next_eid = n
    ticks = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        updates = []
        touched = set()
        for _ in range(draw(st.integers(min_value=0, max_value=8))):
            op = draw(st.sampled_from(["move", "insert", "delete"]))
            candidates = sorted(alive - touched)
            if op == "move" and candidates:
                eid = draw(st.sampled_from(candidates))
                offset = _coords(draw, lo=-5.0, hi=5.0)
                new = _shift(boxes[eid], offset)
                updates.append((eid, boxes[eid], new))
                boxes[eid] = new
                touched.add(eid)
            elif op == "insert":
                lo = _coords(draw)
                box = AABB(lo, [c + 1.0 for c in lo])
                updates.append(Insert(next_eid, box))
                alive.add(next_eid)
                boxes[next_eid] = box
                touched.add(next_eid)
                next_eid += 1
            elif op == "delete" and len(candidates) > 1:
                eid = draw(st.sampled_from(candidates))
                updates.append(Delete(eid))
                alive.discard(eid)
                del boxes[eid]
                touched.add(eid)
        ticks.append(updates)
    return items, ticks


class TestHypothesisOracle:
    @settings(max_examples=25)
    @given(program=update_programs(), policy=st.sampled_from(POLICIES + ["auto"]))
    def test_any_program_any_policy(self, program, policy):
        items, ticks = program
        session = ContinuousSession(
            items,
            UNIVERSE_3D,
            policy="auto" if policy == "auto" else policy,
        )
        subs = [
            session.subscribe(ContinuousRangeQuery(AABB((10, 10, 10), (70, 70, 70)))),
            session.subscribe(ContinuousKNNQuery((50.0, 50.0, 50.0), k=4)),
            session.subscribe(ContinuousJoinSpec(epsilon=1.0)),
        ]
        for updates in ticks:
            session.tick(updates)
            for sub in subs:
                assert_exact(session, sub)


# -- update normalization ------------------------------------------------------


class TestNormalizeUpdates:
    STATE = {1: AABB((0, 0, 0), (1, 1, 1)), 2: AABB((5, 5, 5), (6, 6, 6))}

    def test_insert_then_move_nets_to_insert(self):
        a, b = AABB((10, 10, 10), (11, 11, 11)), AABB((12, 12, 12), (13, 13, 13))
        batch = normalize_updates([Insert(7, a), (7, a, b)], dict(self.STATE))
        assert batch.inserted == {7: b} and not batch.moved and not batch.deleted

    def test_insert_then_delete_nets_to_nothing(self):
        a = AABB((10, 10, 10), (11, 11, 11))
        batch = normalize_updates([Insert(7, a), Delete(7)], dict(self.STATE))
        assert batch.is_empty

    def test_move_then_delete_nets_to_delete_at_start_box(self):
        b = AABB((2, 2, 2), (3, 3, 3))
        batch = normalize_updates([(1, self.STATE[1], b), Delete(1)], dict(self.STATE))
        assert batch.deleted == {1: self.STATE[1]} and not batch.moved

    def test_move_chain_folds_and_roundtrip_cancels(self):
        a = self.STATE[1]
        b = AABB((2, 2, 2), (3, 3, 3))
        batch = normalize_updates([(1, a, b), (1, b, a)], dict(self.STATE))
        assert batch.is_empty
        batch = normalize_updates([(1, a, b), (1, b, b.expanded(1.0))], dict(self.STATE))
        assert batch.moved == {1: (a, b.expanded(1.0))}

    def test_validation_rejects_stale_old_box(self):
        with pytest.raises(KeyError):
            normalize_updates([(1, AABB((9, 9, 9), (10, 10, 10)), self.STATE[1])], dict(self.STATE))
        with pytest.raises(ValueError):
            normalize_updates([Insert(1, self.STATE[1])], dict(self.STATE))
        with pytest.raises(KeyError):
            normalize_updates([Delete(99)], dict(self.STATE))

    def test_delta_apply_rejects_inconsistency(self):
        delta = Delta(tick=1, added=frozenset({1}), removed=frozenset({2}))
        with pytest.raises(ValueError):
            delta.apply({1, 2})  # adds an element already present
        with pytest.raises(ValueError):
            delta.apply(set())  # removes an element not present


# -- the planner ---------------------------------------------------------------


class TestPlanner:
    def test_high_churn_routes_to_recompute(self):
        items = make_items(60, seed=21)
        session = ContinuousSession(items, UNIVERSE_3D)
        sub = session.subscribe(ContinuousRangeQuery(AABB((10, 10, 10), (50, 50, 50))))
        rng = random.Random(1)
        for _ in range(3):
            state = dict(session.state_items())
            updates = [
                (eid, box, _shift(box, [rng.uniform(-2, 2)] * 3))
                for eid, box in state.items()
            ]
            session.tick(updates)
        assert session.stats.policy_routes.get("recompute", 0) > 0
        assert sub.routed == "recompute"

    def test_small_drift_routes_range_to_predictive(self):
        items = make_items(60, seed=22)
        session = ContinuousSession(items, UNIVERSE_3D)
        sub = session.subscribe(ContinuousKNNQuery((50.0, 50.0, 50.0), k=4))
        drive(session, [sub], "drift", ticks=4, seed=7)
        assert sub.routed == "predictive"

    def test_joins_route_incremental_under_low_churn(self):
        items = make_items(60, seed=23)
        session = ContinuousSession(items, UNIVERSE_3D)
        sub = session.subscribe(ContinuousJoinSpec(epsilon=1.0))
        drive(session, [sub], "drift", ticks=4, seed=8)
        assert sub.routed == "incremental"

    def test_pinned_policy_wins_over_planner(self):
        items = make_items(50, seed=24)
        session = ContinuousSession(items, UNIVERSE_3D)
        pinned = session.subscribe(
            ContinuousRangeQuery(AABB((0, 0, 0), (40, 40, 40))), policy="recompute"
        )
        drive(session, [pinned], "drift", ticks=3, seed=9)
        assert session.stats.policy_routes == {"recompute": 3}

    def test_teleports_keep_range_off_predictive(self):
        items = make_items(60, seed=25)
        session = ContinuousSession(items, UNIVERSE_3D)
        sub = session.subscribe(ContinuousRangeQuery(AABB((10, 10, 10), (80, 80, 80))))
        drive(session, [sub], "teleport", ticks=4, seed=10)
        assert sub.routed == "incremental"


# -- fault injection -----------------------------------------------------------


class Boom(RuntimeError):
    pass


class TestFaultInjection:
    """A policy raising mid-tick must not corrupt the session: the error
    propagates, other subscriptions finish their tick, and the failed one
    re-syncs from recompute next tick with no leaked safe-region state —
    the continuous-tier mirror of the PR 6 spill-tmpdir regression."""

    def _session(self):
        items = make_items(80, seed=31)
        session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
        victim = session.subscribe(ContinuousJoinSpec(epsilon=1.5, refine=self._refine))
        bystander = session.subscribe(ContinuousRangeQuery(AABB((10, 10, 10), (60, 60, 60))))
        knn = session.subscribe(ContinuousKNNQuery((40.0, 40.0, 40.0), k=5))
        return session, victim, bystander, knn

    def _refine(self, a: int, b: int) -> bool:
        if getattr(self, "_explode", False):
            raise Boom("refine blew up mid-tick")
        return True

    def _tick(self, session, rng):
        # Teleport the sampled elements into one tight cluster: the join's
        # re-probe is then guaranteed candidate pairs, so the refine callable
        # (the fault site) actually runs every tick.
        state = dict(session.state_items())
        updates = []
        for eid in rng.sample(sorted(state), k=8):
            old = state[eid]
            extent = [h - l for l, h in zip(old.lo, old.hi)]
            lo = [50.0 + rng.uniform(-1.0, 1.0) for _ in range(3)]
            new = AABB(lo, [c + e for c, e in zip(lo, extent)])
            updates.append((eid, old, new))
        return session.tick(updates)

    def test_fault_resyncs_next_tick(self):
        session, victim, bystander, knn = self._session()
        rng = random.Random(2)
        self._tick(session, rng)
        emitted_before_fault = list(victim.deltas)
        result_before_fault = set(victim.result)

        self._explode = True
        with pytest.raises(Boom):
            self._tick(session, rng)
        # The faulted subscription: no delta emitted, last result intact,
        # per-spec maintenance state dropped (nothing leaked).
        assert victim.dirty and victim.routed is None
        assert list(victim.deltas) == emitted_before_fault
        assert set(victim.result) == result_before_fault
        incremental = session._policies["incremental"]
        assert victim.spec.cqid not in incremental._partners
        # Bystanders completed the faulted tick and stayed exact.
        assert_exact(session, bystander)
        assert_exact(session, knn)
        assert session.stats.faults == 1

        # Next tick: the victim re-syncs through recompute; its delta spans
        # the missed tick, so accumulation still reconstructs the oracle.
        self._explode = False
        self._tick(session, rng)
        assert not victim.dirty
        assert session.stats.resyncs == 1
        assert session.stats.policy_routes.get("resync") == 1
        assert_exact(session, victim)
        # And per-spec state was rebuilt for the routed policy.
        assert victim.routed == "incremental"
        assert victim.spec.cqid in incremental._partners
        # Fully back to normal maintenance afterwards.
        self._tick(session, rng)
        assert_exact(session, victim)
        assert session.stats.resyncs == 1

    def test_authoritative_state_applies_despite_fault(self):
        session, victim, _, _ = self._session()
        state = dict(session.state_items())
        eid, other = sorted(state)[:2]
        # Land right on another element so the join's re-probe is guaranteed
        # a candidate pair — the refine callable (the fault site) must run.
        new_box = state[other]
        self._explode = True
        with pytest.raises(Boom):
            session.tick([(eid, state[eid], new_box)])
        assert session.state_box(eid) == new_box


# -- kNN distance-slack safe regions -------------------------------------------


class TestKNNSlackSafeRegion:
    """Member motion alone must not invalidate a kNN result: the slack to
    the (k+1)-th neighbor absorbs small drift, and the held result is
    patched to exact distances (pinned against the oracle each tick)."""

    def _neighbourhood(self, rng: random.Random):
        center = (50.0, 50.0, 50.0)
        items: dict[int, AABB] = {}
        for eid in range(6):  # the standing top-k members, within ~3 of center
            lo = [c + rng.uniform(-1.5, 1.5) for c in center]
            items[eid] = AABB(lo, [v + 0.2 for v in lo])
        for eid in range(6, 106):  # a far cloud, always > 25 away
            while True:
                lo = [rng.uniform(0.0, 95.0) for _ in range(3)]
                box = AABB(lo, [v + 0.5 for v in lo])
                if box.min_distance_to_point(center) > 25.0:
                    break
            items[eid] = box
        return center, items

    @pytest.mark.parametrize("policy", ["incremental", "predictive"])
    def test_small_drift_holds_safe_region(self, policy):
        rng = random.Random(77)
        center, items = self._neighbourhood(rng)
        session = ContinuousSession(list(items.items()), UNIVERSE_3D, policy=policy)
        sub = session.subscribe(ContinuousKNNQuery(center, k=5))
        ticks = 25
        for _ in range(ticks):
            updates = []
            for eid in range(6):  # every member jitters every tick
                box = session.state_box(eid)
                offset = [rng.uniform(-0.05, 0.05) for _ in range(3)]
                updates.append((eid, box, _shift(box, offset)))
            for eid in rng.sample(range(6, 106), k=12):  # the cloud drifts too
                box = session.state_box(eid)
                offset = [rng.uniform(-0.5, 0.5) for _ in range(3)]
                updates.append((eid, box, _shift(box, offset)))
            session.tick(updates)
            assert_exact(session, sub)  # held results are patched, still exact
        counters = session.counters
        # Members moved on all 25 ticks: the old member-motion rule would
        # have recomputed 25 times.  Only the first evaluation (no slack
        # recorded yet) may invalidate.
        assert counters.safe_region_invalidations <= 1
        assert counters.safe_region_hits >= ticks - 1

    def test_outsider_crossing_slack_invalidates(self):
        rng = random.Random(78)
        center, items = self._neighbourhood(rng)
        session = ContinuousSession(list(items.items()), UNIVERSE_3D, policy="incremental")
        sub = session.subscribe(ContinuousKNNQuery(center, k=5))
        # Establish the slack with one jitter tick...
        box = session.state_box(0)
        session.tick([(0, box, _shift(box, [0.01, 0.0, 0.0]))])
        before = session.counters.safe_region_invalidations
        # ...then teleport a cloud element onto the query point: it lands
        # inside the k-th distance, so the cached membership must change.
        intruder = session.state_box(99)
        offset = [c - l for c, l in zip(center, intruder.lo)]
        delta = session.tick([(99, intruder, _shift(intruder, offset))])[sub.cqid]
        assert session.counters.safe_region_invalidations == before + 1
        assert 99 in delta.added
        assert_exact(session, sub)


# -- telemetry -----------------------------------------------------------------


class TestTelemetry:
    def test_stats_and_counters_flow(self):
        items = make_items(100, seed=41)
        session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
        subs = [session.subscribe(s) for kind in KINDS for s in make_specs(kind)]
        drive(session, subs, "churn", ticks=6, seed=42)
        stats = session.stats
        assert stats.ticks == 6
        assert stats.deltas == 6 * len(subs)
        assert stats.updates > 0
        checks = session.counters.safe_region_hits + session.counters.safe_region_invalidations
        assert checks > 0
        added = stats.results_added + stats.pairs_added
        removed = stats.results_removed + stats.pairs_removed
        assert added + removed == sum(
            len(d.added) + len(d.removed) for sub in subs for d in sub.deltas
        )

    def test_continuous_report_renders(self):
        items = make_items(60, seed=43)
        session = ContinuousSession(items, UNIVERSE_3D)
        subs = [session.subscribe(s) for s in make_specs("join")]
        drive(session, subs, "drift", ticks=4, seed=44)
        report = continuous_report(session)
        assert "safe regions" in report and "policy" in report
        assert session_report(session) == report  # dispatch on type

    def test_counters_snapshot_diff_cover_new_fields(self):
        from repro.instrumentation import Counters

        counters = Counters()
        counters.safe_region_hits = 3
        counters.safe_region_invalidations = 2
        snap = counters.snapshot()
        counters.safe_region_hits = 10
        diff = counters.diff(snap)
        assert diff.safe_region_hits == 7 and diff.safe_region_invalidations == 0
        assert "safe_region_hits" in counters.as_dict()


# -- IteratedSelfJoin delta surface --------------------------------------------


class TestIteratedSelfJoinDeltas:
    @pytest.mark.parametrize("strategy", ["incremental", "recompute"])
    def test_step_returns_exact_pair_delta(self, strategy):
        items = make_items(80, seed=51)
        join = IteratedSelfJoin(items, UNIVERSE_3D, strategy=strategy)
        boxes = dict(items)
        accumulated = set(join.pairs)
        rng = random.Random(6)
        for _ in range(6):
            moves = []
            for eid in rng.sample(sorted(boxes), k=10):
                new = _shift(boxes[eid], [rng.uniform(-2, 2)] * 3)
                moves.append((eid, boxes[eid], new))
                boxes[eid] = new
            delta = join.step(moves)
            assert isinstance(delta, PairDelta)
            assert not (delta.added & delta.removed)
            accumulated = (accumulated - delta.removed) | delta.added
            assert accumulated == join.pairs


# -- the async push surface ----------------------------------------------------


class TestContinuousServing:
    def _updates(self, session, rng, k=8):
        state = dict(session.state_items())
        return [
            (eid, state[eid], _shift(state[eid], [rng.uniform(-2, 2)] * 3))
            for eid in rng.sample(sorted(state), k=k)
        ]

    def test_streams_receive_every_delta(self):
        async def main():
            items = make_items(80, seed=61)
            session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
            async with ContinuousServing(session) as serving:
                stream = serving.subscribe(ContinuousRangeQuery(AABB((15, 15, 15), (70, 70, 70))))
                join_stream = serving.subscribe(ContinuousJoinSpec(epsilon=1.0))
                received: list[Delta] = []

                async def consume():
                    async for delta in stream:
                        received.append(delta)

                consumer = asyncio.create_task(consume())
                rng = random.Random(7)
                for _ in range(5):
                    await serving.tick(self._updates(session, rng))
                await asyncio.sleep(0)
                stream.close()
                await consumer
                assert len(received) == 5
                accumulated = set(stream.subscription.initial)
                for delta in received:
                    accumulated = delta.apply(accumulated)
                assert accumulated == set(stream.current)
                assert join_stream.current == session.oracle_result(join_stream.subscription)

        asyncio.run(main())

    def test_backpressure_merges_exactly(self):
        async def main():
            items = make_items(60, seed=62)
            session = ContinuousSession(items, UNIVERSE_3D, policy="incremental")
            async with ContinuousServing(session, max_queue=2) as serving:
                stream = serving.subscribe(ContinuousRangeQuery(AABB((10, 10, 10), (80, 80, 80))))
                rng = random.Random(8)
                for _ in range(10):  # no consumer: queue overflows and merges
                    await serving.tick(self._updates(session, rng))
                assert stream.merged > 0
                accumulated = set(stream.subscription.initial)
                drained = 0
                while drained < 2:
                    delta = await stream.get()
                    accumulated = delta.apply(accumulated)
                    drained += 1
                assert accumulated == set(stream.current)

        asyncio.run(main())

    def test_two_streams_one_subscription(self):
        async def main():
            items = make_items(50, seed=63)
            session = ContinuousSession(items, UNIVERSE_3D, policy="recompute")
            async with ContinuousServing(session) as serving:
                first = serving.subscribe(ContinuousKNNQuery((50.0, 50.0, 50.0), k=4))
                second = serving.stream(first.subscription)
                rng = random.Random(9)
                await serving.tick(self._updates(session, rng))
                a, b = await first.get(), await second.get()
                assert a == b
                second.close()
                await serving.tick(self._updates(session, rng))
                assert (await first.get()).tick == 2
                # the closed stream got nothing new
                assert second._queue.qsize() <= 1

        asyncio.run(main())


# -- simulation subscribers ----------------------------------------------------


class TestSimulationSubscribers:
    def test_engine_monitor_subscribes(self):
        from repro.core import UniformGrid
        from repro.sim import ContinuousDensityMonitor, TimeSteppedSimulation
        from repro.sim.plasticity import PlasticityModel

        items = dict(make_items(80, seed=71))
        regions = [AABB((10, 10, 10), (40, 40, 40)), AABB((30, 30, 30), (90, 90, 90))]
        monitor = ContinuousDensityMonitor(regions)
        model = PlasticityModel(items, UNIVERSE_3D, neighbourhood_queries=2, seed=3)
        sim = TimeSteppedSimulation(
            model, UniformGrid(universe=UNIVERSE_3D), monitors=[monitor], continuous=True
        )
        sim.run(5)
        assert len(monitor.history) == 5
        assert len(monitor.delta_sizes) == 5
        for sub, region in zip(monitor._subs, regions):
            assert sub.result == sim.continuous.oracle_result(sub)
            assert monitor.history[-1][regions.index(region)] == len(sub.result)

    def test_growth_model_continuous_matches_batch_join(self):
        from repro.core import UniformGrid
        from repro.datasets.neuroscience import generate_neurons
        from repro.joins import JoinSession
        from repro.joins.spec import SynapseJoinSpec
        from repro.sim import GrowthModel, TimeSteppedSimulation

        epsilon = 0.3
        batch_ds = generate_neurons(neurons=5, segments_per_neuron=4, seed=30)
        cont_ds = generate_neurons(neurons=5, segments_per_neuron=4, seed=30)
        batch = GrowthModel(batch_ds, join_every=1, epsilon=epsilon, seed=9)
        cont = GrowthModel(cont_ds, join_every=1, epsilon=epsilon, seed=9, continuous=True)
        TimeSteppedSimulation(batch, UniformGrid(universe=batch_ds.universe)).run(5)
        TimeSteppedSimulation(cont, UniformGrid(universe=cont_ds.universe)).run(5)
        assert batch.synapse_counts == cont.synapse_counts
        synapses = JoinSession().run(SynapseJoinSpec(cont_ds, epsilon=epsilon))
        assert {(s.segment_a, s.segment_b) for s in synapses} == cont.synapse_subscription.result
