"""The vectorized AABB kernels must agree with the scalar predicates.

Randomized 2-d/3-d box sets (including degenerate and barely-touching boxes)
are evaluated pairwise both ways; any disagreement on a closed-interval edge
case would silently corrupt every batched query, so these comparisons are
exhaustive over the generated pair matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.aabb import (
    AABB,
    array_to_boxes,
    as_box_array,
    batch_contains,
    batch_contains_points,
    batch_intersects,
    batch_min_distance_to_points,
    boxes_to_array,
)


def _random_boxes(rng: np.random.Generator, count: int, dims: int) -> list[AABB]:
    """Boxes on a coarse lattice so exact touching/degenerate cases occur."""
    a = np.round(rng.uniform(-10, 10, size=(count, dims)) * 2) / 2
    b = np.round(rng.uniform(-10, 10, size=(count, dims)) * 2) / 2
    degenerate = rng.random(count) < 0.25
    b[degenerate] = a[degenerate]
    return [AABB(np.minimum(x, y), np.maximum(x, y)) for x, y in zip(a, b)]


@pytest.mark.parametrize("dims", [2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_intersects_matches_scalar(dims, seed):
    rng = np.random.default_rng(seed)
    boxes_a = _random_boxes(rng, 25, dims)
    boxes_b = _random_boxes(rng, 30, dims)
    got = batch_intersects(boxes_to_array(boxes_a), boxes_to_array(boxes_b))
    assert got.shape == (25, 30)
    for i, box_a in enumerate(boxes_a):
        for j, box_b in enumerate(boxes_b):
            assert got[i, j] == box_a.intersects(box_b)


@pytest.mark.parametrize("dims", [2, 3])
@pytest.mark.parametrize("seed", [3, 4, 5])
def test_batch_contains_matches_scalar(dims, seed):
    rng = np.random.default_rng(seed)
    boxes_a = _random_boxes(rng, 25, dims)
    # Bias B towards small boxes so containment actually happens.
    boxes_b = [
        AABB(box.lo, tuple(l + e / 4 for l, e in zip(box.lo, box.extents())))
        for box in _random_boxes(rng, 30, dims)
    ]
    got = batch_contains(boxes_to_array(boxes_a), boxes_to_array(boxes_b))
    hits = 0
    for i, box_a in enumerate(boxes_a):
        for j, box_b in enumerate(boxes_b):
            expected = box_a.contains_box(box_b)
            hits += expected
            assert got[i, j] == expected
    # A box always contains itself — sanity that the test isn't vacuous.
    self_test = batch_contains(boxes_to_array(boxes_a), boxes_to_array(boxes_a))
    assert np.all(np.diag(self_test))


@pytest.mark.parametrize("dims", [2, 3])
def test_batch_contains_points_matches_scalar(dims):
    rng = np.random.default_rng(6)
    boxes = _random_boxes(rng, 20, dims)
    points = np.round(rng.uniform(-10, 10, size=(40, dims)) * 2) / 2
    got = batch_contains_points(boxes_to_array(boxes), points)
    for i, box in enumerate(boxes):
        for j, point in enumerate(points):
            assert got[i, j] == box.contains_point(point)


@pytest.mark.parametrize("dims", [2, 3])
def test_batch_min_distance_matches_scalar(dims):
    rng = np.random.default_rng(7)
    boxes = _random_boxes(rng, 20, dims)
    points = rng.uniform(-12, 12, size=(35, dims))
    got = batch_min_distance_to_points(boxes_to_array(boxes), points)
    assert got.shape == (35, 20)
    for j, box in enumerate(boxes):
        for i, point in enumerate(points):
            assert got[i, j] == pytest.approx(box.min_distance_to_point(point), abs=1e-12)
    # Distance is zero exactly for contained points.
    inside = batch_contains_points(boxes_to_array(boxes), points).T
    assert np.array_equal(got == 0.0, inside)


def test_round_trips_and_shapes():
    rng = np.random.default_rng(8)
    boxes = _random_boxes(rng, 10, 3)
    arr = boxes_to_array(boxes)
    assert arr.shape == (10, 2, 3)
    assert array_to_boxes(arr) == boxes
    assert as_box_array(arr) is arr or np.array_equal(as_box_array(arr), arr)
    assert as_box_array(boxes).shape == (10, 2, 3)
    assert boxes_to_array([], dims=3).shape == (0, 2, 3)
    with pytest.raises(ValueError):
        as_box_array(np.zeros((4, 3)))
