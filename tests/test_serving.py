"""The serving tier: shared-memory worker pool + event-loop executors.

These tests pin the contracts ISSUE 6 introduces:

* **shared-memory lifecycle** — every ``SegmentGroup`` the pool publishes
  is unlinked by ``close()`` / ``with``-exit, including after a worker
  crash (``live_segment_names`` audits ``/dev/shm`` directly);
* **zero re-pickle** — an index crosses the process boundary exactly once
  per (index, pool) as a snapshot; a poisoned ``__reduce__`` proves no
  pickle fallback, and ``pool.exports`` stays at one across many flushes
  until the index actually mutates;
* **oracle equivalence under concurrency** — a sustained mixed
  range/kNN/point/join workload from N async clients answers exactly what
  the inline LinearScan / nested-loop oracles answer, query for query;
* **flush policy** — the event-loop flusher attributes every flush to
  ``full`` / ``deadline`` / ``idle`` and feeds the serving telemetry line;
* **spill hygiene** — a join that dies mid-merge releases the session's
  spill tmpdir immediately (the cleanup-on-error fix), and the session
  stays usable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import random
import signal
import time

import numpy as np
import pytest

from conftest import knn_pairs, make_items
from repro import (
    AABB,
    FlushPolicy,
    JoinSession,
    KNNQuery,
    PointQuery,
    QuerySession,
    RangeQuery,
    RTree,
    SelfJoinSpec,
    ServingSession,
    ShardedExecutor,
    ShardedJoinExecutor,
    UniformGrid,
    WorkerPool,
    default_pool,
    shutdown_default_pool,
)
from repro.approx import SpillTree
from repro.engine.session import BatchExecutor
from repro.indexes.linear_scan import LinearScan
from repro.instrumentation.counters import Counters
from repro.joins.session import InlineJoinExecutor
from repro.serving.async_executor import AsyncExecutor
from repro.serving.shm import AttachedArrays, SegmentGroup, live_segment_names
from repro.serving.snapshots import build_worker_index, export_index_payload

pytestmark = pytest.mark.serving

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


@pytest.fixture(autouse=True)
def clean_shared_pool():
    """The /dev/shm audits need a clean slate: earlier test files may have
    routed sharded batches through the process-wide default pool, whose
    cached exports legitimately stay live until interpreter exit."""
    shutdown_default_pool()
    yield


def build_grid(items):
    grid = UniformGrid(universe=UNIVERSE, cell_size=5.0)
    grid.bulk_load(items)
    return grid


def make_boxes(count: int, seed: int, extent: float = 6.0) -> list[AABB]:
    rng = random.Random(seed)
    boxes = []
    for _ in range(count):
        lo = [rng.uniform(0.0, 95.0) for _ in range(3)]
        hi = [c + rng.uniform(1.0, extent) for c in lo]
        boxes.append(AABB(lo, hi))
    return boxes


@pytest.fixture
def loaded():
    items = make_items(600, seed=31)
    oracle = LinearScan()
    oracle.bulk_load(items)
    return items, build_grid(items), oracle


@pytest.fixture(params=["fork", "spawn"])
def pool(request):
    """One WorkerPool per supported start method: the shm attach/unlink
    lifecycle must survive spawn (no inherited memory) exactly as it does
    fork.  Skips only where the platform lacks the method."""
    if request.param not in multiprocessing.get_all_start_methods():
        pytest.skip(f"platform lacks the {request.param!r} start method")
    p = WorkerPool(workers=2, context=request.param)
    yield p
    p.close()


# -- shared-memory segments ----------------------------------------------------


class TestSegments:
    def test_roundtrip_and_unlink(self):
        arrays = {
            "eids": np.arange(32, dtype=np.int64),
            "boxes": np.random.default_rng(0).uniform(size=(32, 2, 3)),
            "empty": np.empty((0, 3), dtype=np.float64),
        }
        group = SegmentGroup(arrays)
        assert len(live_segment_names()) == 3
        attached = AttachedArrays(group.meta)
        for field, array in arrays.items():
            np.testing.assert_array_equal(attached.arrays[field], array)
        attached.release()
        group.close()
        assert live_segment_names() == []

    def test_close_is_idempotent(self):
        group = SegmentGroup({"a": np.ones(4)})
        group.close()
        group.close()
        assert group.closed
        assert live_segment_names() == []

    def test_failed_construction_reclaims_partial_segments(self, monkeypatch):
        import repro.serving.shm as shm

        name = f"{shm.SEGMENT_PREFIX}-collide"
        monkeypatch.setattr(shm, "_segment_name", lambda field: name)
        with pytest.raises(FileExistsError):
            SegmentGroup({"a": np.ones(4), "b": np.ones(4)})
        assert live_segment_names() == []


# -- the worker pool -----------------------------------------------------------


class PickleBombGrid(UniformGrid):
    """An index whose pickling is an error: proof the pool ships snapshots."""

    def __reduce__(self):
        raise AssertionError("index crossed the process boundary via pickle")


class TestWorkerPool:
    def run_batch(self, session, oracle, seed, count=200):
        boxes = make_boxes(count, seed)
        handles = [session.submit(RangeQuery(box)) for box in boxes]
        rng = random.Random(seed + 1)
        points = [tuple(rng.uniform(0.0, 100.0) for _ in range(3)) for _ in range(count)]
        khandles = [session.submit(KNNQuery(p, k=4)) for p in points]
        session.flush()
        for box, handle in zip(boxes, handles):
            assert sorted(handle.result()) == sorted(oracle.range_query(box))
        for p, handle in zip(points, khandles):
            assert knn_pairs(handle.result()) == knn_pairs(oracle.knn(p, 4))

    @pytest.mark.parametrize("build", ["grid", "rtree"])
    def test_pooled_shards_match_oracle(self, loaded, pool, build):
        items, grid, oracle = loaded
        if build == "grid":
            index = grid
        else:
            index = RTree(max_entries=16)
            index.bulk_load(items)
        session = QuerySession(
            index, executor=ShardedExecutor(workers=2, min_shard=32, pool=pool)
        )
        self.run_batch(session, oracle, seed=11)
        # One flush, two kind-groups (range + kNN) — two sharded runs.
        assert session.stats.executor_runs == {"sharded": 2}
        assert pool.exports == 1
        assert pool.shards_run > 0

    def test_index_exported_exactly_once_across_flushes(self, pool):
        items = make_items(600, seed=31)
        index = PickleBombGrid(universe=UNIVERSE, cell_size=5.0)
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        session = QuerySession(
            index, executor=ShardedExecutor(workers=2, min_shard=16, pool=pool)
        )
        for flush in range(10):
            self.run_batch(session, oracle, seed=100 + flush, count=64)
        assert session.stats.flushes == 10
        # The zero-re-pickle pin: ten flushes, one snapshot export — and the
        # poisoned __reduce__ proves no flush fell back to pickling.
        assert pool.exports == 1

    def test_mutation_triggers_a_fresh_export(self, loaded, pool):
        items, grid, oracle = loaded
        session = QuerySession(
            grid, executor=ShardedExecutor(workers=2, min_shard=16, pool=pool)
        )
        self.run_batch(session, oracle, seed=21, count=64)
        assert pool.exports == 1
        new_item = (10_000, AABB((1.0, 1.0, 1.0), (2.0, 2.0, 2.0)))
        grid.insert(*new_item)
        oracle.insert(*new_item)
        self.run_batch(session, oracle, seed=22, count=64)
        assert pool.exports == 2

    def test_join_item_exports_are_cached(self, loaded, pool):
        items, _, _ = loaded
        session = JoinSession(
            executor=ShardedJoinExecutor(workers=2, min_shard=50, pool=pool)
        )
        shared = tuple(items)
        expected = sorted(JoinSession().run(SelfJoinSpec(shared)))
        assert sorted(session.run(SelfJoinSpec(shared))) == expected
        assert sorted(session.run(SelfJoinSpec(shared))) == expected
        assert session.stats.executor_runs == {"sharded": 2}
        assert len(pool._item_exports) == 1

    def test_worker_crash_recovers_and_segments_survive(self, loaded, pool):
        items, grid, oracle = loaded
        session = QuerySession(
            grid, executor=ShardedExecutor(workers=2, min_shard=16, pool=pool)
        )
        self.run_batch(session, oracle, seed=31, count=64)
        live_before = live_segment_names()
        assert live_before
        for process in list(pool._executor._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        time.sleep(0.1)
        # The retry path recreates the executor; the parent-owned segments
        # were never at risk, so the rerun reuses the one export.
        self.run_batch(session, oracle, seed=32, count=64)
        assert pool.exports == 1
        assert live_segment_names() == live_before
        pool.close()
        assert live_segment_names() == []

    def test_with_block_unlinks_every_segment(self, loaded):
        items, grid, oracle = loaded
        with WorkerPool(workers=2) as scoped:
            session = QuerySession(
                grid, executor=ShardedExecutor(workers=2, min_shard=16, pool=scoped)
            )
            self.run_batch(session, oracle, seed=41, count=64)
            assert scoped.segment_bytes > 0
            assert live_segment_names()
        assert live_segment_names() == []
        assert scoped.closed

    def test_default_pool_is_a_resettable_singleton(self):
        first = default_pool()
        assert default_pool() is first
        shutdown_default_pool()
        assert first.closed
        second = default_pool()
        assert second is not first
        shutdown_default_pool()

    def test_unexportable_index_falls_back_without_pooling(self, pool):
        # KD-trees have no packed export; the sharded executor must still
        # answer (legacy paths) and the pool must not register anything.
        from repro import KDTree

        items = make_items(300, seed=5, points=True)
        index = KDTree()
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        session = QuerySession(
            index, executor=ShardedExecutor(workers=2, min_shard=16, pool=pool)
        )
        boxes = make_boxes(80, seed=6)
        handles = [session.submit(RangeQuery(box)) for box in boxes]
        session.flush()
        for box, handle in zip(boxes, handles):
            assert sorted(handle.result()) == sorted(oracle.range_query(box))
        assert pool.exports == 0


# -- tree & spill payloads ------------------------------------------------------


class TestTreeAndSpillPayloads:
    """R-tree-family indexes ship their packed node cache (kind ``"tree"``)
    and spill trees their flat defeatist arrays (kind ``"spill"``): workers
    attach the structure directly instead of STR-rebuilding an R-tree from
    the raw ``(eids, boxes)`` payload."""

    def _tree(self, items):
        tree = RTree(max_entries=8)
        tree.bulk_load(items)
        return tree

    def test_worker_attaches_tree_payload_without_rebuild(self, loaded, monkeypatch):
        items, _, oracle = loaded
        tree = self._tree(items)
        payload = export_index_payload(tree)
        assert payload is not None and payload[0] == "tree"
        kind, arrays, scalars = payload
        eids, boxes = tree.export_items()

        def explode(self, items):
            raise AssertionError("worker rebuilt an R-tree from raw items")

        # The build-cost pin: with bulk_load poisoned, the tree payload
        # still rehydrates (it adopts the exported node cache)...
        monkeypatch.setattr(RTree, "bulk_load", explode)
        snapshot = build_worker_index(kind, arrays, scalars)
        # ...while the legacy packed payload would have to rebuild.
        with pytest.raises(AssertionError, match="rebuilt"):
            build_worker_index("packed", {"eids": eids, "boxes": boxes}, {})

        assert len(snapshot) == len(tree)
        probe_boxes = make_boxes(60, seed=47)
        for got, box in zip(snapshot.batch_range_query(probe_boxes), probe_boxes):
            assert sorted(got) == sorted(oracle.range_query(box))
        rng = random.Random(48)
        points = np.asarray(
            [[rng.uniform(0.0, 100.0) for _ in range(3)] for _ in range(60)]
        )
        assert snapshot.batch_knn(points, 4) == tree.batch_knn(points, 4)

    def test_pool_publishes_node_cache_for_trees(self, loaded, pool):
        items, _, oracle = loaded
        tree = self._tree(items)
        session = QuerySession(
            tree, executor=ShardedExecutor(workers=2, min_shard=32, pool=pool)
        )
        boxes = make_boxes(80, seed=51)
        handles = [session.submit(RangeQuery(box)) for box in boxes]
        session.flush()
        for box, handle in zip(boxes, handles):
            assert sorted(handle.result()) == sorted(oracle.range_query(box))
        entry = pool.ensure_index(tree)
        assert entry.kind == "tree"
        assert pool.exports == 1  # the lookup above reused the live export

    def test_pool_serves_defeatist_spill_batches(self, pool):
        items = make_items(600, seed=33, points=True)
        spill = SpillTree(tau=0.25, leaf_size=32, seed=9)
        spill.bulk_load(items)
        rng = random.Random(7)
        points = [tuple(rng.uniform(0.0, 100.0) for _ in range(3)) for _ in range(400)]
        expected = spill.approx_batch_knn(np.asarray(points, dtype=np.float64), 4)
        session = QuerySession(
            spill, executor=ShardedExecutor(workers=2, min_shard=32, pool=pool)
        )
        got = session.knn(points, 4, accuracy=0.5)
        assert got == expected  # sharding must not change a single answer
        assert session.stats.executor_runs == {"sharded": 1}
        assert session.stats.batch.approx_descents == len(points)
        entry = pool.ensure_index(spill)
        assert entry.kind == "spill"
        assert pool.exports == 1


class TestMappedSpillRuns:
    """ISSUE 9: workers attach spill files by path+descriptor the same way
    they attach shm index payloads — N processes map ONE spill file
    read-only and merge their tile runs concurrently, with no byte copied
    on the read path and no descriptor inherited (the spawn param proves
    the attach is purely path-based)."""

    def _spilled_plan(self, seed):
        from repro.exec.external_join import SpillPBSMJoin

        items_a = make_items(1200, seed=seed)
        items_b = [(eid + 10_000, box) for eid, box in make_items(1100, seed=seed + 1)]
        strategy = SpillPBSMJoin(budget=150_000)
        counters = Counters()
        plan = strategy.plan_tile_runs(items_a, items_b, counters)
        assert plan is not None and plan.runs >= 2
        return plan, counters

    def test_concurrent_workers_map_one_spill_file(self, pool):
        plan, plan_counters = self._spilled_plan(81)
        try:
            before = plan_counters.snapshot()
            expected = [
                tuple(arr.tolist() for arr in plan.merge_inline(run, Counters()))
                for run in range(plan.runs)
            ]
            # Segment reads are charged to the spill manager's counters.
            inline_reads = plan_counters.diff(before)
            parts = pool.run_tile_runs(plan.run_tasks())
            worker_counters = Counters()
            got = []
            for ids_a, ids_b, counters in parts:
                worker_counters.merge(counters)
                got.append((ids_a.tolist(), ids_b.tolist()))
            # Exactness: every run's id arrays, bit for bit, run for run.
            assert got == expected
            # No copy amplification: the workers read exactly the bytes the
            # inline merge reads — each segment once, as a mapped view.
            assert worker_counters.spill_bytes_read == inline_reads.spill_bytes_read
            assert worker_counters.zero_copy_reads > 0
        finally:
            plan.release()

    def test_worker_crash_recovers_and_spill_dir_is_released(self, loaded):
        items = make_items(1400, seed=83)
        with WorkerPool(workers=2) as pool:
            session = JoinSession(
                budget=100_000,
                executor=ShardedJoinExecutor(workers=2, min_shard=64, pool=pool),
            )
            expected = sorted(JoinSession(budget=100_000).run(SelfJoinSpec(items)))
            assert sorted(session.run(SelfJoinSpec(items))) == expected
            assert session.stats.strategy_runs.get("pbsm_spill") == 1
            assert session.stats.tile_runs_dispatched > 0
            spill_dir = session.spill_manager().dir
            assert os.path.isdir(spill_dir)
            for process in list(pool._executor._processes.values()):
                os.kill(process.pid, signal.SIGKILL)
            time.sleep(0.1)
            # The rerun must stay exact whether the retry path resurrects
            # the pool or the executor falls back to the inline merge.
            assert sorted(session.run(SelfJoinSpec(items))) == expected
            session.close()
            # Worker-side read-only mappings never pin the parent's spill
            # files: close() removes the tmpdir immediately.
            assert not os.path.exists(spill_dir)

    def test_mapped_attach_rejects_truncated_files(self, pool):
        # A descriptor pointing past EOF (stale handle, truncated file) must
        # fail loudly in the worker, not map garbage.
        plan, _ = self._spilled_plan(85)
        try:
            tasks = plan.run_tasks()
            layout, segments_a, segments_b = tasks[0]
            run = segments_a[0][0]
            bogus = dataclasses.replace(run, pages=(10_000,))
            with pytest.raises(Exception):
                pool.run_tile_runs(
                    [(layout, [(bogus,) + segments_a[0][1:]], segments_b)]
                )
        finally:
            plan.release()


# -- the async serving tier ----------------------------------------------------


class TestAsyncServing:
    def test_mixed_workload_matches_oracle(self, loaded, pool):
        items, grid, oracle = loaded
        join_oracle = sorted(JoinSession().run(SelfJoinSpec(tuple(items))))
        shared_items = tuple(items)

        async def client(serving, cid):
            rng = random.Random(1000 + cid)
            for _ in range(5):
                lo = [rng.uniform(0.0, 95.0) for _ in range(3)]
                hi = [c + rng.uniform(1.0, 6.0) for c in lo]
                box = AABB(lo, hi)
                assert sorted(await serving.range_query(box)) == sorted(
                    oracle.range_query(box)
                )
                point = tuple(rng.uniform(0.0, 100.0) for _ in range(3))
                assert knn_pairs(await serving.knn(point, 4)) == knn_pairs(
                    oracle.knn(point, 4)
                )
                stab = tuple(rng.uniform(0.0, 100.0) for _ in range(3))
                assert sorted(await serving.point_query(stab)) == sorted(
                    oracle.range_query(AABB(stab, stab))
                )
            assert sorted(await serving.join(SelfJoinSpec(shared_items))) == join_oracle

        async def main():
            async with ServingSession(
                grid, pool=pool, workers=2, min_shard=4, join_min_shard=50
            ) as serving:
                await asyncio.gather(*(client(serving, cid) for cid in range(8)))
                return serving.queries.stats, serving.joins.stats

        qstats, jstats = asyncio.run(main())
        assert qstats.submitted == 8 * 5 * 3
        assert qstats.batch.queries == qstats.submitted
        # Concurrent clients coalesced: far fewer flushes than requests,
        # and the queue demonstrably held several clients at once.
        assert qstats.flushes <= qstats.submitted // 2
        assert qstats.queue_high_water >= 2
        assert sum(qstats.flush_triggers.values()) == qstats.flushes
        assert jstats.joins == 8
        assert jstats.queue_high_water >= 1

    def test_flush_trigger_full(self, loaded):
        _, grid, oracle = loaded
        session = QuerySession(grid, executor=BatchExecutor())
        policy = FlushPolicy(max_batch=4, max_delay=0.5, idle_flush=False)
        boxes = make_boxes(4, seed=51)

        async def main():
            async with AsyncExecutor(session, policy) as executor:
                handles = await asyncio.gather(
                    *(executor.submit(RangeQuery(box)) for box in boxes)
                )
                return [await handle for handle in handles]

        results = asyncio.run(main())
        for box, ids in zip(boxes, results):
            assert sorted(ids) == sorted(oracle.range_query(box))
        assert session.stats.flush_triggers.get("full", 0) >= 1
        assert "idle" not in session.stats.flush_triggers

    def test_flush_trigger_deadline(self, loaded):
        _, grid, _ = loaded
        session = QuerySession(grid, executor=BatchExecutor())
        policy = FlushPolicy(max_batch=10_000, max_delay=0.05, idle_flush=False)

        async def main():
            async with AsyncExecutor(session, policy) as executor:
                handle = await executor.submit(RangeQuery(AABB((0, 0, 0), (5, 5, 5))))
                return await handle

        asyncio.run(main())
        assert session.stats.flush_triggers == {"deadline": 1}
        assert session.stats.flush_seconds > 0.0

    def test_flush_trigger_idle(self, loaded):
        _, grid, _ = loaded
        session = QuerySession(grid, executor=BatchExecutor())

        async def main():
            async with AsyncExecutor(session, FlushPolicy(max_delay=1.0)) as executor:
                handles = await asyncio.gather(
                    *(executor.submit(RangeQuery(box)) for box in make_boxes(3, seed=52))
                )
                for handle in handles:
                    await handle

        asyncio.run(main())
        assert session.stats.flush_triggers == {"idle": 1}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FlushPolicy(max_batch=0)
        with pytest.raises(ValueError):
            FlushPolicy(max_delay=-0.1)

    def test_error_propagates_to_the_awaiting_client(self, loaded):
        _, grid, oracle = loaded
        session = QuerySession(grid, executor=BatchExecutor())

        async def main():
            async with AsyncExecutor(session) as executor:
                bad = await executor.submit(RangeQuery(AABB((0.0, 0.0), (1.0, 1.0))))
                good = await executor.submit(KNNQuery((10.0, 10.0, 10.0), k=3))
                with pytest.raises(ValueError):
                    await bad
                return await good

        result = asyncio.run(main())
        assert knn_pairs(result) == knn_pairs(oracle.knn((10.0, 10.0, 10.0), 3))

    def test_aclose_flushes_stragglers(self, loaded):
        _, grid, oracle = loaded
        session = QuerySession(grid, executor=BatchExecutor())
        box = make_boxes(1, seed=53)[0]

        async def main():
            executor = AsyncExecutor(session, FlushPolicy(max_batch=100, max_delay=30.0, idle_flush=False))
            handle = await executor.submit(RangeQuery(box))
            await executor.aclose()
            assert executor.latency_summary()["flushes"] >= 1
            return handle

        handle = asyncio.run(main())
        # Settled by the close-time flush — reading it must not re-flush.
        assert sorted(handle.result()) == sorted(oracle.range_query(box))
        assert session.pending == 0

    def test_serving_session_routes_specs_and_queries(self, loaded, pool):
        items, grid, _ = loaded
        from repro.analysis.session_report import session_report

        async def main():
            async with ServingSession(grid, pool=pool, workers=2) as serving:
                query_handle = await serving.submit(RangeQuery(AABB((0, 0, 0), (9, 9, 9))))
                join_handle = await serving.submit(SelfJoinSpec(tuple(items[:50])))
                await query_handle
                await join_handle
                return session_report(serving.queries), session_report(serving.joins)

        query_report, join_report_text = asyncio.run(main())
        assert "serving:" in query_report
        assert "serving:" in join_report_text


# -- spill cleanup on flush error (the tmpdir-leak fix) ------------------------


class TestSpillCleanupOnError:
    def test_failed_merge_releases_the_spill_tmpdir(self, monkeypatch):
        items = make_items(200, seed=3)
        session = JoinSession(budget=2048)  # tiny: every real spec spills
        manager = session.spill_manager()
        spill_dir = manager.dir
        assert os.path.isdir(spill_dir)

        def boom(*args, **kwargs):
            raise RuntimeError("merge died")

        monkeypatch.setattr("repro.joins.kernels.tile_layout", boom)
        with pytest.raises(RuntimeError, match="merge died"):
            session.run(SelfJoinSpec(items))
        # The fix under test: the error path released the spill files
        # immediately instead of parking them until session close.
        assert not os.path.exists(spill_dir)
        assert session._spill is None

        monkeypatch.undo()
        expected = sorted(JoinSession().run(SelfJoinSpec(items)))
        assert sorted(session.run(SelfJoinSpec(items))) == expected  # fresh manager
        session.close()
        assert not os.path.exists(session._spill_dir or spill_dir)

    def test_clean_flush_keeps_the_manager_open(self):
        items = make_items(200, seed=4)
        session = JoinSession(budget=2048)
        expected = sorted(JoinSession().run(SelfJoinSpec(items)))
        assert sorted(session.run(SelfJoinSpec(items))) == expected
        assert session.stats.strategy_runs.get("pbsm_spill") == 1
        assert session._spill is not None and not session._spill.closed
        session.close()
