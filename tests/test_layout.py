"""Node layout replays through the cache simulator."""

import pytest

from repro.indexes.rtree import RTree
from repro.storage.cache import CacheSimulator
from repro.storage.layout import assign_addresses, node_size_bytes, replay_queries

from conftest import make_items, make_queries


@pytest.fixture(scope="module")
def tree():
    index = RTree(max_entries=16)
    index.bulk_load(make_items(3000, seed=2))
    return index


def _cache():
    return CacheSimulator(capacity_bytes=64 * 1024, line_bytes=64, associativity=4)


class TestAssignAddresses:
    def test_every_node_mapped(self, tree):
        addresses = assign_addresses(tree, layout="bfs")
        assert len(addresses) == tree.node_count

    def test_no_overlaps(self, tree):
        addresses = assign_addresses(tree, layout="bfs")
        spans = sorted(addresses.values())
        for (a_start, a_size), (b_start, _) in zip(spans, spans[1:]):
            assert a_start + a_size <= b_start

    def test_bfs_is_aligned(self, tree):
        addresses = assign_addresses(tree, layout="bfs", alignment=64)
        assert all(address % 64 == 0 for address, _ in addresses.values())

    def test_unknown_layout(self, tree):
        with pytest.raises(ValueError):
            assign_addresses(tree, layout="heap")

    def test_entry_bytes_scales_size(self, tree):
        full = assign_addresses(tree, layout="bfs", entry_bytes=56)
        quantized = assign_addresses(tree, layout="bfs", entry_bytes=20)
        total_full = sum(size for _, size in full.values())
        total_quantized = sum(size for _, size in quantized.values())
        assert total_quantized < total_full


class TestReplay:
    def test_replay_counts_misses(self, tree):
        addresses = assign_addresses(tree, layout="bfs")
        cache = _cache()
        misses = replay_queries(tree, make_queries(10, seed=3), addresses, cache)
        assert misses > 0
        assert cache.hits + cache.misses > 0

    def test_warm_replay_misses_less(self, tree):
        addresses = assign_addresses(tree, layout="bfs")
        cache = _cache()
        queries = make_queries(5, seed=4)
        cold = replay_queries(tree, queries, addresses, cache)
        warm = replay_queries(tree, queries, addresses, cache)
        assert warm <= cold

    def test_compressed_entries_miss_less(self, tree):
        queries = make_queries(20, seed=5)
        full = replay_queries(
            tree, queries, assign_addresses(tree, layout="bfs", entry_bytes=56), _cache()
        )
        compressed = replay_queries(
            tree, queries, assign_addresses(tree, layout="bfs", entry_bytes=20), _cache()
        )
        assert compressed < full
