"""Session semantics: deferred handles, buffering, executors, public API.

The QuerySession is the single public query surface (ISSUE 3); these tests
pin its contract:

* handles resolve in submission order, and reading ANY pending handle
  flushes the whole buffer (flush-on-read);
* mixed range / kNN / point submissions coexist in one buffer and flush as
  grouped batches;
* every executor is interchangeable — InlineExecutor and BatchExecutor
  agree with the LinearScan oracle on every index, and the
  ShardedExecutor's merged results and dedup stats match single-process
  execution;
* the curated public API (`repro.__all__`, the index registry) exposes the
  session surface without deep module imports.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from conftest import knn_pairs, make_items, make_queries
from repro import (
    AABB,
    INDEX_REGISTRY,
    BatchExecutor,
    BatchQueryEngine,
    InlineExecutor,
    KNNQuery,
    PointQuery,
    QuerySession,
    RangeQuery,
    ShardedExecutor,
    available_indexes,
    make_index,
)
from repro.engine.session import QueryBatch
from repro.indexes.linear_scan import LinearScan

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

# Every exact box-capable index, built the way the property suite builds
# them — the session must behave identically over all of them.
SESSION_INDEXES = [
    "linear_scan",
    "rtree",
    "rstar",
    "rplus",
    "disk_rtree",
    "crtree",
    "octree",
    "loose_octree",
    "uniform_grid",
    "multires_grid",
]


def build_index(name: str):
    kwargs = {}
    if name in ("rplus", "octree", "loose_octree", "uniform_grid", "multires_grid"):
        kwargs["universe"] = UNIVERSE
    index = make_index(name, **kwargs)
    return index


@pytest.fixture(scope="module")
def loaded():
    items = make_items(220, seed=31)
    oracle = LinearScan()
    oracle.bulk_load(items)
    return items, oracle


class TestQueryValues:
    def test_qids_are_unique_and_tags_carried(self):
        a = RangeQuery(AABB((0, 0, 0), (1, 1, 1)), tag="vis")
        b = KNNQuery((1.0, 2.0, 3.0), k=4, tag=("probe", 7))
        c = PointQuery((5.0, 5.0, 5.0))
        assert len({a.qid, b.qid, c.qid}) == 3
        assert a.tag == "vis" and b.tag == ("probe", 7) and c.tag is None
        assert b.point == (1.0, 2.0, 3.0)

    def test_queries_are_immutable_values(self):
        q = RangeQuery(AABB((0, 0), (1, 1)))
        with pytest.raises(AttributeError):
            q.tag = "other"
        assert KNNQuery((0.0,), k=1).k == 1
        assert KNNQuery((0.0,), k=0).k == 0  # legal: answers []
        with pytest.raises(ValueError):
            KNNQuery((0.0,), k=-1)

    def test_k_zero_matches_kernel_engine(self, loaded):
        """Drop-in parity: k=0 answers empty lists, as the engine does."""
        items, _ = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        points = np.array([[10.0, 10.0, 10.0], [50.0, 50.0, 50.0]])
        engine = BatchQueryEngine.kernel(index)
        session = QuerySession(index)
        assert session.knn(points, 0) == engine.knn(points, 0) == [[], []]
        assert session.submit(KNNQuery((10.0, 10.0, 10.0), k=0)).result() == []

    def test_kind_markers(self):
        assert RangeQuery(AABB((0, 0), (1, 1))).kind == "range"
        assert KNNQuery((0.0, 0.0), k=1).kind == "knn"
        assert PointQuery((0.0, 0.0)).kind == "point"


class TestHandlesAndBuffer:
    def test_submissions_defer_until_flush(self, loaded):
        items, _ = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        handles = [session.submit(RangeQuery(q)) for q in make_queries(6, seed=32)]
        assert session.pending == 6
        assert not any(h.resolved for h in handles)
        session.flush()
        assert session.pending == 0
        assert all(h.resolved for h in handles)
        assert session.stats.flushes == 1

    def test_flush_on_read_resolves_every_pending_handle(self, loaded):
        items, oracle = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        queries = make_queries(5, seed=33)
        handles = [session.submit(RangeQuery(q)) for q in queries]
        # Reading the LAST handle first must flush (and resolve) them all.
        last = handles[-1].result()
        assert sorted(last) == sorted(oracle.range_query(queries[-1]))
        assert all(h.resolved for h in handles)
        assert session.stats.flushes == 1  # one flush served every read
        for handle, query in zip(handles, queries):
            assert sorted(handle.result()) == sorted(oracle.range_query(query))
        assert session.stats.flushes == 1  # reads after resolution are free

    def test_resolution_follows_submission_order(self, loaded):
        """Interleaved scalar and vector submissions land on the right
        handles: each result equals the oracle's answer for ITS query."""
        items, oracle = loaded
        index = build_index("rtree")
        index.bulk_load(items)
        session = QuerySession(index)
        queries = make_queries(7, seed=34)
        h_first = session.submit(RangeQuery(queries[0]))
        h_vector = session.submit_ranges(queries[1:6], tag="window-sweep")
        h_last = session.submit(RangeQuery(queries[6]))
        session.flush()
        assert sorted(h_first.result()) == sorted(oracle.range_query(queries[0]))
        assert sorted(h_last.result()) == sorted(oracle.range_query(queries[6]))
        vector = h_vector.result()
        assert h_vector.tag == "window-sweep"
        assert len(vector) == 5
        for got, query in zip(vector, queries[1:6]):
            assert sorted(got) == sorted(oracle.range_query(query))

    def test_mixed_kinds_share_one_buffer_and_flush(self, loaded):
        items, oracle = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        box = make_queries(1, seed=35)[0]
        point = (40.0, 45.0, 50.0)
        stab = items[17][1].center()
        h_range = session.submit(RangeQuery(box))
        h_knn = session.submit(KNNQuery(point, k=5))
        h_point = session.submit(PointQuery(stab))
        h_knn9 = session.submit(KNNQuery(point, k=9))  # distinct k → own batch
        assert session.pending == 4
        session.flush()
        assert session.stats.flushes == 1
        # Grouped into four executor runs: range, point, and two kNN ks.
        assert session.stats.batch.batches == 4
        assert sorted(h_range.result()) == sorted(oracle.range_query(box))
        assert knn_pairs(h_knn.result()) == knn_pairs(oracle.knn(point, 5))
        assert knn_pairs(h_knn9.result()) == knn_pairs(oracle.knn(point, 9))
        assert sorted(h_point.result()) == sorted(
            oracle.range_query(AABB(stab, stab))
        )

    def test_failed_group_settles_handles_and_spares_the_rest(self, loaded):
        """An executor error must not orphan handles: the failed group's
        handles re-raise the error from result(), other groups still run."""
        items, oracle = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        good_box = make_queries(1, seed=45)[0]
        h_good = session.submit(KNNQuery((10.0, 10.0, 10.0), k=3))
        h_bad = session.submit(RangeQuery(AABB((0.0, 0.0), (1.0, 1.0))))  # 2-d vs 3-d
        h_good2 = session.submit(RangeQuery(good_box))  # same doomed group
        with pytest.raises(ValueError):
            session.flush()
        assert session.pending == 0
        assert h_bad.resolved and h_good2.resolved
        with pytest.raises(ValueError):
            h_bad.result()
        with pytest.raises(ValueError):
            h_good2.result()  # rode in the same batch as the bad query
        # The kNN group was independent and still answered.
        assert knn_pairs(h_good.result()) == knn_pairs(oracle.knn((10.0, 10.0, 10.0), 3))
        # The session stays usable afterwards.
        assert sorted(session.range_query([good_box])[0]) == sorted(
            oracle.range_query(good_box)
        )

    def test_deferred_read_confines_errors_to_its_own_group(self, loaded):
        """Reading a handle whose own query succeeded never raises another
        group's error — and the read is idempotent.  Explicit flush() is
        where cross-group errors surface."""
        items, oracle = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        session.submit(RangeQuery(AABB((0.0, 0.0), (1.0, 1.0))))  # 2-d
        session.submit_ranges(make_queries(3, seed=47))  # same doomed group
        h_good = session.submit(KNNQuery((10.0, 10.0, 10.0), k=2))
        expected = knn_pairs(oracle.knn((10.0, 10.0, 10.0), 2))
        assert knn_pairs(h_good.result()) == expected  # first read: no raise
        assert knn_pairs(h_good.result()) == expected  # and idempotent

    def test_failed_handle_reports_its_own_groups_error(self, loaded):
        """When two groups fail in one flush, each handle re-raises the
        error that consumed ITS submission — never the other group's."""
        items, _ = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)

        class Boom(Exception):
            pass

        def exploding_policy(idx, batch):
            if batch.kind == "knn":
                class _Bomb(InlineExecutor):
                    def run(self, *a, **kw):
                        raise Boom("knn-broken")
                return _Bomb()
            return InlineExecutor()

        session = QuerySession(index, policy=exploding_policy)
        h_range = session.submit(RangeQuery(AABB((0.0, 0.0), (1.0, 1.0))))  # 2-d
        h_range2 = session.submit_ranges(make_queries(2, seed=48))  # concat fails
        h_knn = session.submit(KNNQuery((10.0, 10.0, 10.0), k=2))  # executor fails
        with pytest.raises((ValueError, Boom)):
            session.flush()  # first group's error, whichever ran first
        with pytest.raises(ValueError):
            h_range.result()
        with pytest.raises(ValueError):
            h_range2.result()
        with pytest.raises(Boom):
            h_knn.result()

    def test_immediate_call_survives_unrelated_buffered_failure(self, loaded):
        """A convenience call whose own batch succeeded returns its results
        even when a previously buffered group fails in the shared flush;
        the failed group's own handle still re-raises on read."""
        items, oracle = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        h_bad = session.submit(RangeQuery(AABB((0.0, 0.0), (1.0, 1.0))))  # 2-d
        h_bad2 = session.submit_ranges(make_queries(3, seed=46))  # same group
        points = np.array([[10.0, 10.0, 10.0], [70.0, 20.0, 30.0]])
        got = session.knn(points, 4)  # flush fails on the range group
        assert [knn_pairs(r) for r in got] == [
            knn_pairs(oracle.knn(tuple(p), 4)) for p in points
        ]
        with pytest.raises(ValueError):
            h_bad.result()
        with pytest.raises(ValueError):
            h_bad2.result()

    def test_empty_submissions_resolve_empty(self, loaded):
        items, _ = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        session = QuerySession(index)
        handle = session.submit_ranges([])
        assert handle.result() == []
        assert session.knn(np.empty((0, 3)), 3) == []


class TestExecutorEquivalence:
    @pytest.mark.parametrize("name", SESSION_INDEXES)
    def test_inline_equals_batch_equals_oracle(self, name, loaded):
        """The heuristic may route any batch to any executor, so inline and
        batch answers must agree (and match the oracle) on every index."""
        items, oracle = loaded
        index = build_index(name)
        index.bulk_load(items)
        queries = make_queries(6, seed=36)
        points = np.array([[20.0, 30.0, 40.0], [77.0, 12.0, 55.0], [5.0, 5.0, 5.0]])

        inline = QuerySession(index, executor=InlineExecutor())
        batch = QuerySession(index, executor=BatchExecutor())

        inline_range = inline.range_query(queries)
        batch_range = batch.range_query(queries)
        for got_i, got_b, query in zip(inline_range, batch_range, queries):
            expected = sorted(oracle.range_query(query))
            assert sorted(got_i) == expected
            assert sorted(got_b) == expected

        inline_knn = inline.knn(points, 6)
        batch_knn = batch.knn(points, 6)
        for got_i, got_b, point in zip(inline_knn, batch_knn, points):
            expected = knn_pairs(oracle.knn(tuple(point), 6))
            assert knn_pairs(got_i) == expected
            assert knn_pairs(got_b) == expected

        # Stabbing parity: include element-boundary points, where a kernel
        # treating degenerate boxes as half-open would diverge.
        stabs = np.asarray([items[5][1].lo, items[9][1].hi, (50.0, 50.0, 50.0)])
        inline_pt = inline.point_query(stabs)
        batch_pt = batch.point_query(stabs)
        for got_i, got_b, p in zip(inline_pt, batch_pt, stabs):
            expected = sorted(oracle.range_query(AABB(tuple(p), tuple(p))))
            assert sorted(got_i) == expected
            assert sorted(got_b) == expected

        assert inline.stats.executor_runs == {"inline": 3}
        assert batch.stats.executor_runs == {"batch": 3}

    def test_inverted_boxes_answer_empty_on_every_executor(self, loaded):
        """The kernel contract admits inverted (lo > hi) windows as empty
        intersections; the inline path must agree, not raise."""
        items, _ = loaded
        index = build_index("uniform_grid")
        index.bulk_load(items)
        inverted = np.array([[[5.0, 5.0, 5.0], [1.0, 1.0, 1.0]]])
        for executor in (InlineExecutor(), BatchExecutor()):
            session = QuerySession(index, executor=executor)
            assert session.range_query(inverted) == [[]]

    def test_default_heuristic_routes_by_size_and_capability(self, loaded):
        items, _ = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        session = QuerySession(grid)
        session.range_query(make_queries(2, seed=37))   # tiny → inline
        session.range_query(make_queries(30, seed=38))  # large → batch kernel
        assert session.stats.executor_runs == {"inline": 1, "batch": 1}

        loop_only = build_index("octree")  # no vectorized kernels
        loop_only.bulk_load(items)
        assert not loop_only.supports_batch_kind("range")
        session = QuerySession(loop_only)
        session.range_query(make_queries(30, seed=38))
        assert session.stats.executor_runs == {"inline": 1}

    def test_supports_batch_kind_probes(self, loaded):
        items, _ = loaded
        grid = build_index("uniform_grid")
        assert grid.supports_batch_kind("range")
        assert grid.supports_batch_kind("point")
        assert grid.supports_batch_kind("knn")
        with pytest.raises(ValueError):
            grid.supports_batch_kind("join")

    def test_policy_override(self, loaded):
        items, _ = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        chosen: list[str] = []
        inline = InlineExecutor()

        def policy(index, batch: QueryBatch):
            chosen.append(batch.kind)
            return inline

        session = QuerySession(grid, policy=policy)
        session.range_query(make_queries(20, seed=39))
        assert chosen == ["range"]
        assert session.stats.executor_runs == {"inline": 1}


@pytest.mark.skipif(not HAVE_FORK, reason="needs the fork start method")
class TestShardedExecutor:
    def test_sharded_matches_single_process_and_oracle(self, loaded):
        items, oracle = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        queries = make_queries(64, seed=40)
        points = np.asarray([q.lo for q in queries])

        sharded = QuerySession(grid, executor=ShardedExecutor(workers=2, min_shard=8))
        single = QuerySession(grid, executor=BatchExecutor())
        got_range = sharded.range_query(queries)
        assert [sorted(r) for r in got_range] == [
            sorted(r) for r in single.range_query(queries)
        ]
        for got, query in zip(got_range, queries):
            assert sorted(got) == sorted(oracle.range_query(query))
        assert [knn_pairs(r) for r in sharded.knn(points, 4)] == [
            knn_pairs(oracle.knn(tuple(p), 4)) for p in points
        ]
        assert sharded.stats.executor_runs == {"sharded": 2}

    def test_dedup_stats_propagate_from_shards(self, loaded):
        """Duplicate queries inside each shard are answered once; the
        per-shard BatchStats merge back into the session's tallies."""
        items, oracle = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        base = make_queries(8, seed=41)
        queries = [q for q in base for _ in range(4)]  # heavy duplication
        session = QuerySession(grid, executor=ShardedExecutor(workers=2, min_shard=4))
        results = session.range_query(queries)
        assert session.stats.batch.queries == len(queries)
        assert session.stats.batch.deduplicated > 0
        assert session.stats.batch.batches == 1  # one logical batch
        for got, query in zip(results, queries):
            assert sorted(got) == sorted(oracle.range_query(query))

    def test_cross_shard_dedup_executes_duplicates_once(self, loaded):
        """Duplicates that land in DIFFERENT shards must still collapse.

        The batch interleaves two copies of the same 8 queries so a
        contiguous 2-way split gives each shard 8 distinct queries —
        per-shard dedup alone would report 0.  Global (pre-partition) dedup
        must count all 8 duplicates and fan the unique results back out.
        """
        items, oracle = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        base = make_queries(8, seed=43)
        queries = base + base  # first shard = base, second shard = base again
        session = QuerySession(grid, executor=ShardedExecutor(workers=2, min_shard=4))
        results = session.range_query(queries)
        assert session.stats.batch.queries == len(queries)
        assert session.stats.batch.deduplicated >= len(base)
        for got, query in zip(results, queries):
            assert sorted(got) == sorted(oracle.range_query(query))
        # Fan-out must hand back independent copies.
        results[0].append(-1)
        assert -1 not in results[len(base)]

    def test_small_batches_fall_back_to_single_process(self, loaded):
        items, _ = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        executor = ShardedExecutor(workers=2, min_shard=10_000)
        session = QuerySession(grid, executor=executor)
        session.range_query(make_queries(12, seed=42))
        # Too small to shard: the executor ran its in-process fallback.
        assert session.stats.batch.batches == 1


class TestPublicApi:
    def test_curated_exports(self):
        import repro

        for name in (
            "QuerySession",
            "RangeQuery",
            "KNNQuery",
            "PointQuery",
            "ResultHandle",
            "InlineExecutor",
            "BatchExecutor",
            "ShardedExecutor",
            "INDEX_REGISTRY",
            "make_index",
            "available_indexes",
        ):
            assert name in repro.__all__, name
            assert hasattr(repro, name)

    def test_registry_builds_every_index(self):
        from repro.indexes.base import SpatialIndex

        for name in available_indexes():
            index = make_index(name)  # every entry constructs with defaults
            assert isinstance(index, INDEX_REGISTRY[name])
            assert isinstance(index, SpatialIndex)
        with pytest.raises(KeyError):
            make_index("no-such-index")

    def test_direct_engine_construction_warns(self, loaded):
        items, _ = loaded
        grid = build_index("uniform_grid")
        grid.bulk_load(items)
        with pytest.warns(DeprecationWarning):
            BatchQueryEngine(grid)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            BatchQueryEngine.kernel(grid)  # the kernel layer stays silent
            QuerySession(grid).range_query(make_queries(8, seed=43))


class TestSessionMatchesKernelEngine:
    """The acceptance bar: session answers are byte-identical to the raw
    kernel engine the pre-redesign callers used directly."""

    @pytest.mark.parametrize("name", ["uniform_grid", "rtree", "multires_grid"])
    def test_range_and_knn_identical_to_engine(self, name, loaded):
        items, _ = loaded
        index = build_index(name)
        index.bulk_load(items)
        queries = np.stack(
            [
                np.asarray([q.lo for q in make_queries(40, seed=44)]),
                np.asarray([q.hi for q in make_queries(40, seed=44)]),
            ],
            axis=1,
        )
        points = queries[:, 0, :]
        engine = BatchQueryEngine.kernel(index)
        session = QuerySession(index)
        assert session.range_query(queries) == engine.range_query(queries)
        assert session.knn(points, 5) == engine.knn(points, 5)
        assert session.point_query(points) == engine.point_query(points)
