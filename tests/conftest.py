"""Shared fixtures and helpers for the test suite.

The central correctness idea: :class:`~repro.indexes.linear_scan.LinearScan`
is the oracle.  ``assert_same_range_results`` and ``assert_same_knn`` compare
any index against it; the property suites drive those comparisons with
hypothesis-generated datasets and queries.  kNN comparisons are exact ordered
``(distance, id)`` lists — the deterministic tie-break contract pinned in
``repro/indexes/base.py`` makes sorting-before-comparing unnecessary.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, SpatialIndex
from repro.indexes.linear_scan import LinearScan

# CI runs with HYPOTHESIS_PROFILE=ci: derandomized (fixed seed) examples so
# tier-1 results are reproducible run-to-run; "dev" keeps the random search.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

UNIVERSE_3D = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
UNIVERSE_2D = AABB((0.0, 0.0), (100.0, 100.0))


def make_items(
    n: int,
    universe: AABB = UNIVERSE_3D,
    max_extent: float = 4.0,
    seed: int = 0,
    points: bool = False,
) -> list[Item]:
    """Random boxes (or points) inside ``universe``."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    items: list[Item] = []
    for eid in range(n):
        start = rng.uniform(lo, hi)
        if points:
            items.append((eid, AABB(start, start)))
            continue
        extent = rng.uniform(0.05, max_extent, size=universe.dims)
        end = np.minimum(start + extent, hi)
        items.append((eid, AABB(start, end)))
    return items


def make_queries(count: int, universe: AABB = UNIVERSE_3D, extent: float = 15.0, seed: int = 1):
    rng = np.random.default_rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    queries = []
    for _ in range(count):
        start = rng.uniform(lo, hi)
        end = np.minimum(start + extent, hi)
        queries.append(AABB(start, end))
    return queries


def assert_same_range_results(index: SpatialIndex, items: list[Item], queries) -> None:
    oracle = LinearScan()
    oracle.bulk_load(items)
    for query in queries:
        got = sorted(index.range_query(query))
        expected = sorted(oracle.range_query(query))
        assert got == expected, (
            f"range mismatch for {query}: got {len(got)} ids, expected {len(expected)}"
        )


def knn_pairs(result) -> list[tuple[float, int]]:
    """Canonicalize a KNNResult for exact comparison.

    Distances are rounded to 10 significant digits (not decimal places, so
    large magnitudes normalize too): scalar ``math.hypot`` and the
    vectorized sqrt-of-squares kernels may differ in the last ulp.
    """
    return [(float(f"{d:.9e}"), e) for d, e in result]


def assert_same_knn(index: SpatialIndex, items: list[Item], points, k: int) -> None:
    """kNN answers must match the oracle *exactly* — the (distance, id)
    tie-break contract (indexes/base.py) makes the full ordered pair list
    comparable, not just the distance multiset."""
    oracle = LinearScan()
    oracle.bulk_load(items)
    for point in points:
        got = knn_pairs(index.knn(point, k))
        expected = knn_pairs(oracle.knn(point, k))
        assert got == expected, f"knn mismatch at {point}: {got} != {expected}"


def recall(oracle_pairs, approx_pairs) -> float:
    """Fraction of the oracle's neighbor ids an approximate answer found.

    Works on one ``KNNResult`` or on parallel lists of them (a batch):
    distances are ignored — recall is an id-set measure, the standard
    figure of merit for defeatist search — and an empty oracle counts as
    perfect recall.
    """
    if oracle_pairs and isinstance(oracle_pairs[0], tuple):
        oracle_pairs, approx_pairs = [oracle_pairs], [approx_pairs]
    hits = total = 0
    for oracle_result, approx_result in zip(oracle_pairs, approx_pairs, strict=True):
        want = {eid for _, eid in oracle_result}
        got = {eid for _, eid in approx_result}
        hits += len(want & got)
        total += len(want)
    return hits / total if total else 1.0


@pytest.fixture(name="recall")
def recall_fixture():
    """The shared recall measure as a fixture (import ``recall`` directly
    for use outside test functions)."""
    return recall


@pytest.fixture
def items_3d() -> list[Item]:
    return make_items(400, seed=7)


@pytest.fixture
def queries_3d():
    return make_queries(12, seed=11)
