"""The join subsystem: oracle equality for every strategy, session behaviour.

The contract under test: **every** strategy in ``JOIN_REGISTRY`` returns the
exact nested-loop pair set — for binary joins, self joins and distance
candidates — over every dataset shape (uniform, clustered, degenerate
points, all-overlapping boxes, empty inputs).  On top of that, the session
layer: planner routing, deferred handles, per-spec strategy pinning, error
containment, the sharded executor's structural cross-shard dedup, and the
JoinStats/telemetry feed.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.datasets.neuroscience import generate_neurons
from repro.datasets.points import clustered_boxes, uniform_boxes
from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.joins import (
    DistanceJoinSpec,
    InlineJoinExecutor,
    JOIN_REGISTRY,
    JoinSession,
    PairJoinSpec,
    SelfJoinSpec,
    ShardedJoinExecutor,
    SynapseDetector,
    SynapseJoinSpec,
    available_join_strategies,
    make_join_strategy,
)
from repro.analysis import join_report, session_report
from repro.joins.strategies import NestedLoopJoin

from conftest import UNIVERSE_3D

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

ALL_STRATEGIES = sorted(JOIN_REGISTRY)
BINARY_STRATEGIES = [n for n in ALL_STRATEGIES if JOIN_REGISTRY[n].binary]


def _uniform(n, seed, offset=0):
    return [(eid + offset, box) for eid, box in uniform_boxes(n, UNIVERSE_3D, 0.5, 5.0, seed=seed)]


def _clustered(n, seed, offset=0):
    return [
        (eid + offset, box)
        for eid, box in clustered_boxes(n, UNIVERSE_3D, clusters=4, seed=seed)
    ]


def _points(n, seed, offset=0):
    rng = np.random.default_rng(seed)
    return [(eid + offset, AABB.from_point(rng.uniform(0, 20, 3))) for eid in range(n)]


def _overlapping(n, offset=0):
    # Every box contains the point (5, 5, 5): all pairs intersect.
    return [
        (eid + offset, AABB((4.0 - 0.01 * eid,) * 3, (6.0 + 0.01 * eid,) * 3))
        for eid in range(n)
    ]


DATASETS = {
    "uniform": (_uniform(150, 1), _uniform(120, 2, offset=10_000)),
    "clustered": (_clustered(120, 3), _clustered(90, 4, offset=10_000)),
    "degenerate_points": (_points(80, 5), _points(70, 6, offset=10_000)),
    "all_overlapping": (_overlapping(40), _overlapping(35, offset=10_000)),
    "mixed": (_uniform(100, 7), _points(60, 8, offset=10_000)),
}

ORACLE = NestedLoopJoin()


class TestStrategyOracle:
    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    @pytest.mark.parametrize("name", BINARY_STRATEGIES)
    def test_binary_matches_nested_loop(self, name, dataset):
        a, b = DATASETS[dataset]
        expected = sorted(ORACLE.join(a, b, Counters()))
        got = sorted(make_join_strategy(name).join(a, b, Counters()))
        assert got == expected

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_self_matches_nested_loop(self, name, dataset):
        items, _ = DATASETS[dataset]
        expected = sorted(ORACLE.self_join(items, Counters()))
        got = sorted(make_join_strategy(name).self_join(items, Counters()))
        assert got == expected

    @pytest.mark.parametrize("name", BINARY_STRATEGIES)
    def test_empty_inputs(self, name):
        strategy = make_join_strategy(name)
        a, _ = DATASETS["uniform"]
        assert strategy.join([], a, Counters()) == []
        assert strategy.join(a, [], Counters()) == []
        assert strategy.join([], [], Counters()) == []

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_empty_self(self, name):
        strategy = make_join_strategy(name)
        assert strategy.self_join([], Counters()) == []
        assert strategy.self_join([(1, AABB((0, 0, 0), (1, 1, 1)))], Counters()) == []

    @pytest.mark.parametrize("name", BINARY_STRATEGIES)
    def test_distance_candidates_complete(self, name):
        """Candidates must be a superset of the true within-ε answer."""
        a, b = DATASETS["uniform"]
        epsilon = 2.0
        boxes = dict(a) | dict(b)
        truth = {
            (ea, eb)
            for ea, ba in a
            for eb, bb in b
            if ba.min_distance_to_box(bb) <= epsilon
        }
        candidates = set(
            make_join_strategy(name).distance_candidates(a, b, epsilon, Counters())
        )
        assert truth <= candidates

    def test_registry_enumeration(self):
        assert available_join_strategies() == ALL_STRATEGIES
        for expected in ("nested_loop", "grid", "pbsm", "sweepline", "touch", "tree", "tiny_cell"):
            assert expected in JOIN_REGISTRY
        with pytest.raises(KeyError):
            make_join_strategy("no_such_join")

    def test_tiny_cell_rejects_binary(self):
        a, b = DATASETS["uniform"]
        with pytest.raises(NotImplementedError):
            make_join_strategy("tiny_cell").join(a, b, Counters())

    def test_partitioned_strategies_cut_comparisons(self):
        a = _uniform(300, 9)
        b = _uniform(300, 10, offset=10_000)
        nested = Counters()
        ORACLE.join(a, b, nested)
        for name in ("pbsm", "pbsm_scalar", "grid", "tree"):
            counters = Counters()
            make_join_strategy(name).join(a, b, counters)
            assert counters.comparisons < nested.comparisons / 5, name


class TestJoinSession:
    def test_deferred_handles_one_flush(self):
        a, b = DATASETS["uniform"]
        session = JoinSession()
        h_self = session.submit(SelfJoinSpec(a))
        h_pair = session.submit(PairJoinSpec(a, b))
        assert session.pending == 2
        assert h_self.result() == sorted(ORACLE.self_join(a, Counters()))
        assert session.pending == 0  # flush-on-read drained the buffer
        assert h_pair.resolved
        assert h_pair.result() == sorted(ORACLE.join(a, b, Counters()))
        assert session.stats.joins == 2
        assert session.stats.pairs > 0

    def test_planner_routes_by_size(self):
        small = _uniform(10, 11)
        large = _uniform(200, 12)
        session = JoinSession()
        assert session.plan(SelfJoinSpec(small)).strategy.name == "nested_loop"
        assert session.plan(SelfJoinSpec(large)).strategy.name == "grid"

    def test_pinned_strategy_and_per_spec_override(self):
        items = _uniform(150, 13)
        pinned = JoinSession(strategy="pbsm")
        assert pinned.plan(SelfJoinSpec(items)).strategy.name == "pbsm"
        result = pinned.run(SelfJoinSpec(items), strategy="sweepline")
        assert result == sorted(ORACLE.self_join(items, Counters()))
        assert pinned.stats.strategy_runs == {"sweepline": 1}

    def test_policy_callable(self):
        items = _uniform(150, 14)
        session = JoinSession(policy=lambda spec: make_join_strategy("tree"))
        session.run(SelfJoinSpec(items))
        assert session.stats.strategy_runs == {"tree": 1}

    def test_every_strategy_through_session(self):
        items, other = DATASETS["clustered"]
        expected_self = sorted(ORACLE.self_join(items, Counters()))
        expected_pair = sorted(ORACLE.join(items, other, Counters()))
        for name in ALL_STRATEGIES:
            session = JoinSession(strategy=name)
            assert session.run(SelfJoinSpec(items)) == expected_self
            if JOIN_REGISTRY[name].binary:
                assert session.run(PairJoinSpec(items, other)) == expected_pair

    def test_error_containment(self):
        """A failing spec settles its own handle; others still resolve."""
        items = _uniform(80, 15)

        class Boom(Exception):
            pass

        def exploding_policy(spec):
            if spec.tag == "bad":
                raise Boom("planner rejected")
            return make_join_strategy("grid")

        session = JoinSession(policy=exploding_policy)
        good = session.submit(SelfJoinSpec(items))
        bad = session.submit(SelfJoinSpec(items, tag="bad"))
        with pytest.raises(Boom):
            session.flush()
        assert good.result() == sorted(ORACLE.self_join(items, Counters()))
        with pytest.raises(Boom):
            bad.result()

    def test_join_stats_funnel(self):
        items = _uniform(200, 16)
        session = JoinSession(strategy="grid")
        pairs = session.run(DistanceJoinSpec(items, None, 1.0))
        stats = session.stats
        assert stats.joins == 1
        assert stats.pairs == len(pairs)
        assert stats.candidates >= len(pairs)
        assert stats.refined == stats.candidates  # box-gap refine runs on all
        assert stats.comparisons > 0
        assert session.counters.refine_tests == stats.refined

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError):
            JoinSession().submit(object())


class TestDistanceJoins:
    @pytest.mark.parametrize("name", ["nested_loop", "grid", "pbsm", "tree", "sweepline"])
    def test_binary_distance_oracle(self, name):
        a = _uniform(80, 17)
        b = _uniform(70, 18, offset=10_000)
        epsilon = 2.5
        expected = sorted(
            (ea, eb)
            for ea, ba in a
            for eb, bb in b
            if ba.min_distance_to_box(bb) <= epsilon
        )
        got = JoinSession(strategy=name).run(DistanceJoinSpec(a, b, epsilon))
        assert got == expected

    @pytest.mark.parametrize("name", ["grid", "pbsm", "tree", "block_nested"])
    def test_self_distance_oracle(self, name):
        items = _clustered(90, 19)
        epsilon = 1.5
        expected = sorted(
            (min(x, y), max(x, y))
            for i, (x, bx) in enumerate(items)
            for y, by in items[i + 1 :]
            if bx.min_distance_to_box(by) <= epsilon
        )
        got = JoinSession(strategy=name).run(DistanceJoinSpec(items, None, epsilon))
        assert got == expected

    def test_refine_callable(self):
        a = _uniform(60, 20)
        b = _uniform(60, 21, offset=10_000)
        boxes = dict(a) | dict(b)

        def refine(ea, eb):
            return boxes[ea].min_distance_to_box(boxes[eb]) <= 3.0

        session = JoinSession()
        got = session.run(DistanceJoinSpec(a, b, 3.0, refine))
        expected = sorted(
            (ea, eb) for ea, ba in a for eb, bb in b if ba.min_distance_to_box(bb) <= 3.0
        )
        assert got == expected
        assert session.stats.refined > 0

    def test_zero_epsilon_is_intersection_join(self):
        items, other = DATASETS["uniform"]
        got = JoinSession(strategy="tree").run(DistanceJoinSpec(items, other, 0.0))
        assert got == sorted(ORACLE.join(items, other, Counters()))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            DistanceJoinSpec([], [], -1.0)


class TestSynapseSpec:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_neurons(neurons=12, segments_per_neuron=25, seed=14)

    @pytest.fixture(scope="class")
    def bruteforce(self, dataset):
        epsilon = 0.25
        expected = set()
        ids = list(dataset.capsules)
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                a, b = ids[i], ids[j]
                if dataset.neuron_of[a] == dataset.neuron_of[b]:
                    continue
                if dataset.capsules[a].distance_to(dataset.capsules[b]) <= epsilon:
                    expected.add((min(a, b), max(a, b)))
        return epsilon, expected

    @pytest.mark.parametrize("name", ["grid", "pbsm", "tree", "nested_loop"])
    def test_matches_bruteforce_under_every_strategy(self, dataset, bruteforce, name):
        epsilon, expected = bruteforce
        synapses = JoinSession(strategy=name).run(SynapseJoinSpec(dataset, epsilon))
        assert {(s.segment_a, s.segment_b) for s in synapses} == expected

    def test_records_are_cross_neuron_and_located(self, dataset):
        for synapse in JoinSession().run(SynapseJoinSpec(dataset, 0.3)):
            assert synapse.neuron_a != synapse.neuron_b
            assert synapse.segment_a < synapse.segment_b
            assert len(synapse.location) == 3
            assert synapse.gap <= 0.3

    def test_detector_wrapper_shares_session(self, dataset, bruteforce):
        epsilon, expected = bruteforce
        session = JoinSession()
        detector = SynapseDetector(dataset, epsilon=epsilon, session=session)
        got = {(s.segment_a, s.segment_b) for s in detector.detect()}
        assert got == expected
        assert session.stats.joins == 1
        assert detector.counters is session.counters

    def test_duplicating_box_join_yields_unique_synapses(self, dataset, bruteforce):
        """The synapse contract excludes duplicate unordered pairs even when
        a user-supplied filter emits the same candidate more than once."""
        epsilon, expected = bruteforce

        def duplicating_join(items_a, items_b, counters):
            pairs = NestedLoopJoin().join(items_a, items_b, counters)
            return pairs + pairs  # a realistic non-deduplicating callable

        synapses = SynapseDetector(dataset, epsilon).detect(box_join=duplicating_join)
        keys = [(s.segment_a, s.segment_b) for s in synapses]
        assert len(keys) == len(set(keys))
        assert set(keys) == expected

    def test_detector_strategy_pin_and_box_join(self, dataset, bruteforce):
        epsilon, expected = bruteforce
        via_strategy = SynapseDetector(dataset, epsilon).detect(strategy="pbsm")
        assert {(s.segment_a, s.segment_b) for s in via_strategy} == expected

        def box_join(items_a, items_b, counters):
            return NestedLoopJoin().join(items_a, items_b, counters)

        via_callable = SynapseDetector(dataset, epsilon).detect(box_join=box_join)
        assert {(s.segment_a, s.segment_b) for s in via_callable} == expected
        with pytest.raises(ValueError):
            SynapseDetector(dataset, epsilon).detect(box_join=box_join, strategy="grid")


@pytest.mark.skipif(not HAVE_FORK, reason="needs the fork start method")
class TestShardedJoinExecutor:
    def test_pair_join_matches_inline(self):
        a = _uniform(400, 22)
        b = _uniform(350, 23, offset=10_000)
        sharded = JoinSession(
            strategy="grid", executor=ShardedJoinExecutor(workers=2, min_shard=64)
        )
        got = sharded.run(PairJoinSpec(a, b))
        assert got == sorted(ORACLE.join(a, b, Counters()))
        assert sharded.stats.executor_runs == {"sharded": 1}

    def test_self_join_cross_shard_dedup_is_exact(self):
        """Each unordered pair must be reported by exactly one shard — the
        result is compared as a *list*, so any double-report fails."""
        items = _clustered(500, 24)
        sharded = JoinSession(
            strategy="grid", executor=ShardedJoinExecutor(workers=4, min_shard=32)
        )
        got = sharded.run(SelfJoinSpec(items))
        assert len(got) == len(set(got))  # no duplicates survived the merge
        assert got == sorted(ORACLE.self_join(items, Counters()))

    def test_distance_self_join_sharded(self):
        items = _uniform(400, 25)
        epsilon = 1.0
        expected = sorted(
            (min(x, y), max(x, y))
            for i, (x, bx) in enumerate(items)
            for y, by in items[i + 1 :]
            if bx.min_distance_to_box(by) <= epsilon
        )
        sharded = JoinSession(
            strategy="tree", executor=ShardedJoinExecutor(workers=2, min_shard=64)
        )
        assert sharded.run(DistanceJoinSpec(items, None, epsilon)) == expected

    def test_small_jobs_fall_back_inline(self):
        items = _uniform(100, 26)
        session = JoinSession(
            strategy="grid", executor=ShardedJoinExecutor(workers=2, min_shard=10_000)
        )
        got = session.run(SelfJoinSpec(items))
        assert got == sorted(ORACLE.self_join(items, Counters()))

    def test_sharded_counters_merge_back(self):
        items = _uniform(400, 27)
        session = JoinSession(
            strategy="pbsm", executor=ShardedJoinExecutor(workers=2, min_shard=64)
        )
        session.run(SelfJoinSpec(items))
        assert session.counters.comparisons > 0
        assert session.stats.comparisons == session.counters.comparisons

    def test_self_join_shards_directly_not_as_binary_expansion(self):
        """ROADMAP known issue, fixed: sharding a self-join used to expand it
        to the full binary join per shard (n² comparisons summed; ~2x the
        inline n²/2).  Direct prefix sharding does n²·(s+1)/2s — with 4
        shards 0.625·n², checked here with the deterministic nested loop."""
        items = _uniform(600, 29)
        n = len(items)
        strategy = make_join_strategy("nested_loop")
        executor = ShardedJoinExecutor(workers=4, min_shard=50)
        counters = Counters()
        pairs = executor.self_pairs(strategy, items, counters)
        inline_counters = Counters()
        expected = InlineJoinExecutor().self_pairs(strategy, items, inline_counters)
        assert sorted(pairs) == sorted(expected)
        # 4 shards: exactly (1+2+3+4)/16 = 0.625 n² prefix-join comparisons.
        assert counters.comparisons == pytest.approx(0.625 * n * n, rel=0.01)
        # Well under the old binary expansion's n² (2x the inline n²/2).
        assert counters.comparisons < 1.3 * inline_counters.comparisons

    def test_distance_self_join_shards_directly(self):
        items = _uniform(500, 30)
        n = len(items)
        strategy = make_join_strategy("nested_loop")
        executor = ShardedJoinExecutor(workers=4, min_shard=50)
        counters = Counters()
        pairs = executor.distance_pairs(strategy, items, None, 1.0, counters)
        expected = InlineJoinExecutor().distance_pairs(strategy, items, None, 1.0, Counters())
        assert sorted(pairs) == sorted(expected)
        assert counters.comparisons <= 0.66 * n * n


class TestTelemetry:
    def test_join_report_renders_routing(self):
        items = _uniform(200, 28)
        session = JoinSession()
        session.run(SelfJoinSpec(items))
        session.run(SelfJoinSpec(items[:20]))
        report = join_report(session)
        assert "joins=2" in report
        assert "grid" in report and "nested_loop" in report
        assert "inline" in report

    def test_session_report_dispatches_on_type(self):
        from repro import QuerySession, UniformGrid

        items = _uniform(100, 29)
        join_session = JoinSession()
        join_session.run(SelfJoinSpec(items))
        assert "candidates=" in session_report(join_session)

        grid = UniformGrid()
        grid.bulk_load(items)
        query_session = QuerySession(grid)
        query_session.range_query([AABB((0, 0, 0), (10, 10, 10))])
        assert "queries=" in session_report(query_session)

    def test_growth_model_accumulates_join_stats(self):
        from repro.sim.growth import GrowthModel

        dataset = generate_neurons(neurons=4, segments_per_neuron=3, seed=30)
        model = GrowthModel(dataset, join_every=1, seed=30)
        from repro.indexes.linear_scan import LinearScan

        index = LinearScan()
        index.bulk_load([(eid, box) for eid, box in model.items().items()])
        for step in range(2):
            model.advance(index, step)
        assert model.join_session.stats.joins == 2
        assert len(model.synapse_counts) == 2


class TestPublicApi:
    def test_curated_exports(self):
        import repro

        for name in (
            "JoinSession",
            "SelfJoinSpec",
            "PairJoinSpec",
            "DistanceJoinSpec",
            "SynapseJoinSpec",
            "JoinStats",
            "JOIN_REGISTRY",
            "make_join_strategy",
            "available_join_strategies",
            "ShardedJoinExecutor",
            "SynapseDetector",
            "Synapse",
            "IteratedSelfJoin",
        ):
            assert name in repro.__all__, name
            assert hasattr(repro, name)

    def test_inline_executor_is_default(self):
        session = JoinSession()
        assert isinstance(session.plan(SelfJoinSpec([])).executor, InlineJoinExecutor)
