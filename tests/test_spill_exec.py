"""The out-of-core execution subsystem: budget, spill, external pipelines.

Covers the four pieces of ``repro/exec/`` and their session wiring:

* :class:`MemoryBudget` reservation accounting and telemetry;
* :class:`SpillManager` typed round-trips and partial row reads;
* the ``pbsm_spill`` strategy — exactness against the in-memory oracle
  under budgets that force spilling, planner routing, stats/report feeds
  (small-scale oracle equality for every dataset shape already runs in
  ``test_join_session.py``, which parametrizes over the whole registry);
* the acceptance pin: |A| = |B| = 100k under a budget ≤ 25% of the
  in-memory working set — exact pairs, bounded slowdown, live counters;
* the chunked external STR bulk load on RTree / R*-tree / DiskRTree;
* the QuerySession budget governor (chunked batches, identical results).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.session_report import join_report, session_report
from repro.exec import (
    BudgetExceeded,
    MemoryBudget,
    SpillManager,
    external_bulk_load,
    pbsm_working_set_bytes,
)
from repro.exec.external_join import SpillPBSMJoin
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import RTree
from repro.indexes.disk_rtree import DiskRTree
from repro.instrumentation.counters import Counters
from repro.engine.session import QuerySession
from repro.joins import (
    JoinSession,
    PairJoinSpec,
    SelfJoinSpec,
    make_join_strategy,
)

from conftest import make_items, make_queries


def _sides(n, seed, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 99.0, size=(n, 3))
    hi = np.minimum(lo + rng.uniform(0.05, extent, size=(n, 3)), 100.0)
    return [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]


def _offset(items, offset):
    return [(eid + offset, box) for eid, box in items]


class TestMemoryBudget:
    def test_reserve_release_high_water(self):
        budget = MemoryBudget(1000)
        budget.reserve(600)
        budget.reserve(300)
        assert budget.in_use == 900
        assert budget.available == 100
        budget.release(500)
        assert budget.in_use == 400
        assert budget.high_water == 900
        assert budget.reservations == 2

    def test_try_reserve_denial(self):
        budget = MemoryBudget(100)
        assert budget.try_reserve(80)
        assert not budget.try_reserve(30)
        assert budget.denials == 1
        assert budget.in_use == 80

    def test_reserve_raises_then_force_overcommits(self):
        budget = MemoryBudget(100)
        with pytest.raises(BudgetExceeded):
            budget.reserve(150)
        budget.reserve(150, force=True)
        assert budget.overcommits == 1
        assert budget.in_use == 150
        assert budget.high_water == 150

    def test_unlimited_admits_everything(self):
        budget = MemoryBudget.unlimited()
        assert budget.limit is None
        assert budget.fits(1 << 60)
        budget.reserve(1 << 40)
        assert budget.high_water == 1 << 40
        assert budget.available is None

    def test_reserving_context_releases_on_error(self):
        budget = MemoryBudget(100)
        with pytest.raises(RuntimeError):
            with budget.reserving(50):
                assert budget.in_use == 50
                raise RuntimeError("boom")
        assert budget.in_use == 0
        assert budget.high_water == 50

    def test_coerce(self):
        assert MemoryBudget.coerce(None).limit is None
        assert MemoryBudget.coerce(4096).limit == 4096
        original = MemoryBudget(10)
        assert MemoryBudget.coerce(original) is original

    def test_invalid(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        budget = MemoryBudget(10)
        with pytest.raises(ValueError):
            budget.reserve(-1)
        with pytest.raises(ValueError):
            budget.release(-1)


class TestSpillManager:
    def test_roundtrip_preserves_dtype_and_shape(self, tmp_path):
        with SpillManager(dir=str(tmp_path)) as spill:
            for array in (
                np.arange(100, dtype=np.int64),
                np.random.default_rng(0).uniform(size=(40, 2, 3)),
                np.zeros((0, 2, 3)),
                np.array([1.5]),
            ):
                handle = spill.spill(array)
                back = spill.read(handle)
                assert back.dtype == array.dtype
                assert back.shape == array.shape
                np.testing.assert_array_equal(back, array)

    def test_read_rows_partial(self, tmp_path):
        array = np.random.default_rng(1).uniform(size=(1000, 2, 3))
        # Tiny pages so row ranges span many pages.
        with SpillManager(dir=str(tmp_path), page_size=512) as spill:
            handle = spill.spill(array)
            for lo, hi in ((0, 1000), (0, 1), (999, 1000), (250, 750), (10, 10)):
                np.testing.assert_array_equal(spill.read_rows(handle, lo, hi), array[lo:hi])
            with pytest.raises(ValueError):
                spill.read_rows(handle, 500, 100)

    def test_counters_charged(self, tmp_path):
        counters = Counters()
        with SpillManager(dir=str(tmp_path), page_size=1024, counters=counters) as spill:
            array = np.arange(1000, dtype=np.float64)  # 8000 bytes -> 8 pages
            handle = spill.spill(array)
            assert counters.tiles_spilled == 1
            assert counters.spill_bytes_written == array.nbytes
            assert counters.pages_written == 8
            spill.read(handle)
            assert counters.spill_bytes_read == array.nbytes
            assert counters.pages_read == 8

    def test_free_releases_pages_for_reuse(self, tmp_path):
        with SpillManager(dir=str(tmp_path), page_size=1024) as spill:
            first = spill.spill(np.arange(512, dtype=np.float64))
            file_bytes = spill.store.file_bytes
            spill.free(first)
            assert spill.live_handles == 0
            second = spill.spill(np.arange(512, dtype=np.float64))
            assert spill.store.file_bytes == file_bytes  # slots reused
            with pytest.raises(ValueError):
                spill.read(first)
            np.testing.assert_array_equal(
                spill.read(second), np.arange(512, dtype=np.float64)
            )

    def test_close_is_idempotent_and_blocks_use(self, tmp_path):
        spill = SpillManager(dir=str(tmp_path))
        spill.spill(np.arange(10))
        spill.close()
        spill.close()
        with pytest.raises(RuntimeError):
            spill.spill(np.arange(10))

    def test_owned_tmpdir_removed_on_close(self):
        spill = SpillManager()
        path = spill.dir
        assert os.path.isdir(path)
        spill.close()
        assert not os.path.exists(path)

    def test_managers_sharing_a_dir_do_not_clobber_each_other(self, tmp_path):
        # Regression: a fixed spill file name + "w+b" open meant a second
        # manager in the same directory truncated the first's live file.
        first = SpillManager(dir=str(tmp_path))
        array = np.random.default_rng(7).uniform(size=(500, 2, 3))
        handle = first.spill(array)
        second = SpillManager(dir=str(tmp_path))
        second.spill(np.zeros(4096))
        np.testing.assert_array_equal(first.read(handle), array)
        first.close()
        second.close()
        assert os.listdir(tmp_path) == []


class TestSpillPBSMJoin:
    def test_unlimited_budget_never_spills(self):
        items_a = _sides(500, seed=10)
        items_b = _offset(_sides(500, seed=11), 10_000)
        counters = Counters()
        strategy = make_join_strategy("pbsm_spill")
        pairs = sorted(strategy.join(items_a, items_b, counters))
        oracle = Counters()
        expected = sorted(make_join_strategy("pbsm").join(items_a, items_b, oracle))
        assert pairs == expected
        assert counters.tiles_spilled == 0
        assert counters.spill_bytes_written == 0

    def test_tiny_budget_spills_and_stays_exact(self):
        items_a = _sides(1200, seed=12)
        items_b = _offset(_sides(1100, seed=13), 10_000)
        counters = Counters()
        strategy = make_join_strategy("pbsm_spill", budget=200_000)
        pairs = sorted(strategy.join(items_a, items_b, counters))
        expected = sorted(make_join_strategy("pbsm").join(items_a, items_b, Counters()))
        assert pairs == expected
        assert counters.tiles_spilled > 0
        assert counters.spill_bytes_written > 0
        assert counters.spill_bytes_read == counters.spill_bytes_written

    def test_session_routes_oversized_specs_to_spill(self):
        items_a = _sides(1500, seed=14)
        items_b = _offset(_sides(1500, seed=15), 10_000)
        small_a, small_b = items_a[:100], items_b[:100]
        with JoinSession(budget=150_000) as session:
            pairs = session.run(PairJoinSpec(items_a, items_b))
            session.run(PairJoinSpec(small_a, small_b))
            assert session.stats.strategy_runs.get("pbsm_spill") == 1
            # The small spec stayed on an in-memory strategy.
            assert sum(session.stats.strategy_runs.values()) == 2
            assert session.stats.strategy_runs.get("pbsm_spill", 0) == 1
            expected = sorted(
                make_join_strategy("pbsm").join(items_a, items_b, Counters())
            )
            assert pairs == expected
            assert session.stats.tiles_spilled > 0
            assert session.stats.spill_bytes_written > 0
            assert session.stats.budget_high_water > 0
            report = join_report(session)
            assert "spill:" in report
            assert "budget-high-water" in report
            spill_dir = session.spill_manager().dir
            assert os.path.isdir(spill_dir)
        assert not os.path.exists(spill_dir)

    def test_self_join_through_session_budget(self):
        items = _sides(1400, seed=16)
        with JoinSession(budget=150_000) as session:
            pairs = session.run(SelfJoinSpec(items))
        expected = sorted(make_join_strategy("pbsm").self_join(items, Counters()))
        assert pairs == expected

    def test_per_spec_pin_by_name(self):
        items_a = _sides(300, seed=17)
        items_b = _offset(_sides(300, seed=18), 10_000)
        session = JoinSession()
        pairs = session.run(PairJoinSpec(items_a, items_b), strategy="pbsm_spill")
        expected = sorted(make_join_strategy("pbsm").join(items_a, items_b, Counters()))
        assert pairs == expected
        assert session.stats.strategy_runs == {"pbsm_spill": 1}

    def test_error_path_leaves_no_spill_files(self, tmp_path, monkeypatch):
        from repro.joins import kernels

        items_a = _sides(1200, seed=19)
        items_b = _offset(_sides(1200, seed=20), 10_000)

        def explode(*args, **kwargs):
            raise RuntimeError("merge kernel down")

        monkeypatch.setattr(kernels, "replica_tile_pairs", explode)
        strategy = SpillPBSMJoin(budget=150_000, spill_dir=str(tmp_path))
        with pytest.raises(RuntimeError, match="merge kernel down"):
            strategy.join(items_a, items_b, Counters())
        # The per-join manager tore down its file even though the join died.
        assert os.listdir(tmp_path) == []

    def test_error_on_shared_manager_frees_every_handle(self, monkeypatch):
        # Regression: with a session-shared SpillManager a mid-merge error
        # used to leak every not-yet-consumed run's pages until close().
        from repro.joins import kernels

        items_a = _sides(1200, seed=21)
        items_b = _offset(_sides(1200, seed=22), 10_000)

        def explode(*args, **kwargs):
            raise RuntimeError("merge kernel down")

        monkeypatch.setattr(kernels, "replica_tile_pairs", explode)
        with SpillManager() as shared:
            strategy = SpillPBSMJoin(budget=150_000, spill=shared)
            with pytest.raises(RuntimeError, match="merge kernel down"):
                strategy.join(items_a, items_b, Counters())
            assert shared.live_handles == 0  # pages released for reuse


class TestSpillAcceptance:
    """The ISSUE 5 acceptance pin at |A| = |B| = 100k."""

    def test_100k_quarter_budget_exact_and_bounded(self):
        n = 100_000
        items_a = _sides(n, seed=30, extent=1.0)
        items_b = _offset(_sides(n, seed=31, extent=1.0), 1_000_000)

        memory = JoinSession(strategy="pbsm")
        start = time.perf_counter()
        expected = memory.run(PairJoinSpec(items_a, items_b))
        memory_time = time.perf_counter() - start

        working_set = pbsm_working_set_bytes(n, n)
        budget = working_set // 4
        with JoinSession(budget=budget) as session:
            start = time.perf_counter()
            pairs = session.run(PairJoinSpec(items_a, items_b))
            spill_time = time.perf_counter() - start

            assert pairs == expected
            assert session.stats.strategy_runs == {"pbsm_spill": 1}
            # Spill counters are live and rendered.
            assert session.stats.tiles_spilled > 0
            assert session.stats.spill_bytes_written > 0
            assert session.stats.spill_bytes_read > 0
            assert session.stats.budget_high_water > 0
            report = join_report(session)
            assert "spill: tiles=" in report
        # Within 5x of the in-memory vectorized PBSM (typically ~1.5-2.5x).
        assert spill_time <= 5.0 * max(memory_time, 1e-9), (
            f"spilling PBSM took {spill_time:.2f}s vs {memory_time:.2f}s in memory"
        )


class TestExternalBuild:
    @pytest.fixture(scope="class")
    def workload(self):
        items = make_items(4000, seed=40)
        queries = make_queries(60, seed=41)
        oracle = LinearScan()
        oracle.bulk_load(items)
        expected = [sorted(oracle.range_query(q)) for q in queries]
        return items, queries, expected

    @pytest.mark.parametrize("cls", [RTree, RStarTree, DiskRTree])
    def test_budgeted_build_answers_like_oracle(self, cls, workload):
        items, queries, expected = workload
        tree = cls()
        # Streaming input + a budget far below the entry arrays: must spill.
        tree.bulk_load_external(iter(items), budget=64_000)
        assert len(tree) == len(items)
        assert tree.counters.spill_bytes_written > 0
        got = [sorted(tree.range_query(q)) for q in queries]
        assert got == expected

    @pytest.mark.parametrize("cls", [RTree, DiskRTree])
    def test_unbudgeted_build_matches_and_never_spills(self, cls, workload):
        items, queries, expected = workload
        tree = cls()
        tree.bulk_load_external(items)
        assert tree.counters.spill_bytes_written == 0
        got = [sorted(tree.range_query(q)) for q in queries]
        assert got == expected

    @pytest.mark.parametrize("cls", [RTree, DiskRTree])
    def test_empty_build_resets(self, cls):
        tree = cls()
        tree.bulk_load_external([], budget=64_000)
        assert len(tree) == 0
        assert tree.range_query(AABB((0, 0, 0), (100, 100, 100))) == []

    def test_generic_dispatch(self, workload):
        items, queries, expected = workload
        tree = RTree()
        external_bulk_load(tree, items, budget=64_000)
        assert [sorted(tree.range_query(q)) for q in queries] == expected
        with pytest.raises(TypeError, match="external bulk load"):
            external_bulk_load(LinearScan(), items, budget=64_000)

    def test_streaming_validation_matches_bulk_load(self):
        # bulk_load_external validates while streaming: same errors as the
        # materializing validate_items path.
        good = make_items(50, seed=42)
        with pytest.raises(ValueError, match="duplicate element id"):
            RTree().bulk_load_external(good + [good[0]], budget=64_000)
        mixed = good + [(999, AABB((0.0, 0.0), (1.0, 1.0)))]
        with pytest.raises(ValueError, match="dims"):
            RTree().bulk_load_external(mixed, budget=64_000)

    def test_budget_high_water_tracked(self, workload):
        items, _, _ = workload
        budget = MemoryBudget(64_000)
        tree = RTree()
        tree.bulk_load_external(items, budget=budget)
        assert budget.high_water > 0
        assert budget.in_use == 0  # every phase released what it reserved


class TestQuerySessionBudget:
    def test_chunked_batches_answer_identically(self):
        items = make_items(3000, seed=50)
        index = RTree()
        index.bulk_load(items)
        queries = make_queries(200, seed=51)
        free = QuerySession(index)
        governed = QuerySession(index, budget=8192)
        expected = free.range_query(queries)
        got = governed.range_query(queries)
        assert [sorted(r) for r in got] == [sorted(r) for r in expected]
        assert governed.stats.batch.budget_chunks > 1
        assert governed.stats.batch.budget_high_water > 0
        report = session_report(governed)
        assert "budget-high-water" in report

    def test_chunked_knn_is_identical(self):
        items = make_items(2000, seed=52)
        index = RTree()
        index.bulk_load(items)
        points = np.random.default_rng(53).uniform(0, 100, size=(300, 3))
        free = QuerySession(index)
        governed = QuerySession(index, budget=4096)
        assert governed.knn(points, k=5) == free.knn(points, k=5)
        assert governed.stats.batch.budget_chunks > 1

    def test_unbudgeted_session_reports_no_spill_line(self):
        items = make_items(500, seed=54)
        index = RTree()
        index.bulk_load(items)
        session = QuerySession(index)
        session.range_query(make_queries(20, seed=55))
        assert "spill:" not in session_report(session)


class TestShardedSpillJoin:
    """ISSUE 9 tentpole: the ``tile_runs`` shard protocol.

    ``pbsm_spill`` partitions in the parent and hands pool workers spilled
    tile *runs* as MappedRun descriptors; each worker maps the spill file
    read-only and merges with the shared kernel.  A tile lives in exactly
    one run and the reference-point dedup is global, so the sharded pair
    list must be **bit-identical** (same order, not just same set) to the
    inline out-of-core merge.
    """

    BUDGET = 150_000

    def _executor(self):
        from repro.joins.session import ShardedJoinExecutor

        return ShardedJoinExecutor(workers=2, min_shard=64)

    def test_pair_join_bit_identical_to_inline(self):
        items_a = _sides(1200, seed=60)
        items_b = _offset(_sides(1100, seed=61), 10_000)
        strategy = SpillPBSMJoin(budget=self.BUDGET)
        inline_counters = Counters()
        expected = strategy.join(items_a, items_b, inline_counters)
        assert inline_counters.tiles_spilled > 0  # the regime under test
        counters = Counters()
        got = self._executor().pair_pairs(
            SpillPBSMJoin(budget=self.BUDGET), items_a, items_b, counters
        )
        assert got == expected  # identical list, not just identical set
        assert counters.tile_runs_dispatched > 0
        assert counters.zero_copy_reads > 0
        # No copy amplification: the sharded merge reads exactly the bytes
        # the inline merge reads — every segment once, straight off the map.
        assert counters.spill_bytes_read == inline_counters.spill_bytes_read

    def test_self_join_bit_identical_to_inline(self):
        from repro.joins.session import InlineJoinExecutor

        items = _sides(1400, seed=62)
        expected = InlineJoinExecutor().self_pairs(
            SpillPBSMJoin(budget=self.BUDGET), items, Counters()
        )
        counters = Counters()
        got = self._executor().self_pairs(
            SpillPBSMJoin(budget=self.BUDGET), items, counters
        )
        assert got == expected
        assert counters.tile_runs_dispatched > 0

    def test_distance_join_bit_identical_to_inline(self):
        from repro.joins.session import InlineJoinExecutor

        items = _sides(1200, seed=63)
        epsilon = 1.5
        expected = InlineJoinExecutor().distance_pairs(
            SpillPBSMJoin(budget=self.BUDGET), items, None, epsilon, Counters()
        )
        counters = Counters()
        got = self._executor().distance_pairs(
            SpillPBSMJoin(budget=self.BUDGET), items, None, epsilon, counters
        )
        assert got == expected

    def test_resident_joins_plan_none_and_run_inline(self):
        # Below-budget inputs never spill: plan_tile_runs declines and the
        # executor answers through the plain inline strategy.
        items_a = _sides(200, seed=64)
        items_b = _offset(_sides(200, seed=65), 10_000)
        strategy = SpillPBSMJoin(budget=None)
        assert strategy.plan_tile_runs(items_a, items_b, Counters()) is None
        counters = Counters()
        got = self._executor().pair_pairs(strategy, items_a, items_b, counters)
        assert sorted(got) == sorted(
            make_join_strategy("pbsm").join(items_a, items_b, Counters())
        )
        assert counters.tile_runs_dispatched == 0

    def test_session_threads_mapped_telemetry(self):
        from repro.joins.session import ShardedJoinExecutor

        items_a = _sides(1500, seed=66)
        items_b = _offset(_sides(1500, seed=67), 10_000)
        with JoinSession(
            budget=self.BUDGET, executor=ShardedJoinExecutor(workers=2, min_shard=64)
        ) as session:
            pairs = session.run(PairJoinSpec(items_a, items_b))
            assert session.stats.strategy_runs.get("pbsm_spill") == 1
            assert session.stats.tile_runs_dispatched > 0
            assert session.stats.zero_copy_reads > 0
            assert session.stats.mapped_bytes > 0
            report = join_report(session)
            assert "mapped:" in report and "tile-runs=" in report
        expected = sorted(make_join_strategy("pbsm").join(items_a, items_b, Counters()))
        assert sorted(pairs) == expected


class TestParallelExternalBuild:
    """ISSUE 9: the mapped-slab path parallelizes the external STR merge.

    Pool workers tile whole slabs from their own read-only mapping of the
    run file; group order (and therefore the packed tree) must be identical
    to the single-process merge.
    """

    def _items(self, n, seed):
        rng = np.random.default_rng(seed)
        lo = rng.uniform(0.0, 400.0, size=(n, 2))
        return [
            (i, AABB(tuple(l), tuple(l + rng.uniform(0.5, 2.0, 2))))
            for i, l in enumerate(lo)
        ]

    def test_leaf_groups_identical_to_inline(self):
        from repro.exec.external_build import external_leaf_groups

        items = self._items(6000, seed=70)
        inline = list(external_leaf_groups(iter(items), 16, 100_000, counters=Counters()))
        counters = Counters()
        parallel = list(
            external_leaf_groups(iter(items), 16, 100_000, counters=counters, workers=2)
        )
        assert parallel == inline  # same groups, same order
        assert counters.tile_runs_dispatched > 0
        assert counters.zero_copy_reads > 0

    @pytest.mark.parametrize("cls", [RTree, DiskRTree])
    def test_indexes_build_identically_with_workers(self, cls):
        items = self._items(5000, seed=71)
        solo = cls(max_entries=16)
        solo.bulk_load_external(iter(items), budget=80_000)
        pooled = cls(max_entries=16)
        pooled.bulk_load_external(iter(items), budget=80_000, workers=2)
        assert len(pooled) == len(items)
        assert pooled.counters.tile_runs_dispatched > 0
        queries = [
            AABB((40.0 * i, 30.0 * i), (40.0 * i + 50.0, 30.0 * i + 50.0))
            for i in range(8)
        ]
        for got, expected in zip(
            pooled.batch_range_query(queries), solo.batch_range_query(queries)
        ):
            assert sorted(got) == sorted(expected)

    def test_resident_build_skips_the_pool(self):
        # Unbudgeted builds keep every run resident — nothing to map, so the
        # workers path must decline rather than ship arrays around.
        from repro.exec.external_build import external_leaf_groups

        items = self._items(800, seed=72)
        counters = Counters()
        groups = list(
            external_leaf_groups(iter(items), 16, None, counters=counters, workers=2)
        )
        assert sum(len(g) for g in groups) == len(items)
        assert counters.tile_runs_dispatched == 0
