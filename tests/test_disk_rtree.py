"""Disk-resident R-tree: correctness plus page-transfer accounting."""

import pytest

from repro.geometry.aabb import AABB
from repro.indexes.disk_rtree import DiskRTree

from conftest import assert_same_knn, assert_same_range_results, make_items, make_queries


class TestCorrectness:
    def test_range_matches_oracle(self, items_3d, queries_3d):
        tree = DiskRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn_matches_oracle(self, items_3d):
        tree = DiskRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(30, 60, 10), (80, 80, 80)], k=6)

    def test_dynamic_workload(self, queries_3d):
        items = make_items(300, seed=6)
        tree = DiskRTree(max_entries=8)
        live = {}
        for eid, box in items:
            tree.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::3]:
            tree.delete(eid, live.pop(eid))
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_delete_missing(self):
        tree = DiskRTree()
        with pytest.raises(KeyError):
            tree.delete(1, AABB((0, 0, 0), (1, 1, 1)))

    def test_empty_queries(self):
        tree = DiskRTree()
        assert tree.range_query(AABB((0, 0, 0), (1, 1, 1))) == []
        assert tree.knn((0, 0, 0), 4) == []


class TestPageAccounting:
    def test_cold_queries_read_pages(self):
        items = make_items(2000, seed=2)
        tree = DiskRTree(max_entries=32, buffer_pages=16)
        tree.bulk_load(items)
        before = tree.counters.snapshot()
        tree.clear_cache()
        tree.range_query(AABB((20, 20, 20), (40, 40, 40)))
        delta = tree.counters.diff(before)
        assert delta.pages_read > 0

    def test_warm_cache_reads_fewer_pages(self):
        items = make_items(2000, seed=2)
        query = AABB((20, 20, 20), (40, 40, 40))
        tree = DiskRTree(max_entries=32, buffer_pages=512)
        tree.bulk_load(items)
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        cold = tree.counters.diff(before).pages_read
        before = tree.counters.snapshot()
        tree.range_query(query)  # same query, warm pool
        warm = tree.counters.diff(before).pages_read
        assert warm < cold

    def test_clear_cache_restores_cold_behaviour(self):
        items = make_items(1000, seed=3)
        query = AABB((10, 10, 10), (30, 30, 30))
        tree = DiskRTree(max_entries=32, buffer_pages=512)
        tree.bulk_load(items)
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        first = tree.counters.diff(before).pages_read
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        second = tree.counters.diff(before).pages_read
        assert second == first

    def test_page_count_grows_with_data(self):
        small = DiskRTree(max_entries=16)
        small.bulk_load(make_items(100, seed=1))
        large = DiskRTree(max_entries=16)
        large.bulk_load(make_items(2000, seed=1))
        assert large.page_count() > small.page_count()


class TestMappedMode:
    """ISSUE 9: ``mapped=True`` stores nodes as binary pages in a real file
    (:class:`~repro.storage.pagestore.MappedPageStore`) and the read path
    serves zero-copy views through the buffer pool — answers, maintenance
    and residency accounting must match the object store exactly."""

    def _pair(self, items, **kwargs):
        plain = DiskRTree(**kwargs)
        plain.bulk_load(items)
        mapped = DiskRTree(mapped=True, **kwargs)
        mapped.bulk_load(items)
        return plain, mapped

    def test_query_parity_with_object_store(self, items_3d, queries_3d):
        plain, mapped = self._pair(items_3d, max_entries=16)
        try:
            for query in queries_3d:
                assert sorted(mapped.range_query(query)) == sorted(
                    plain.range_query(query)
                )
            batched_plain = plain.batch_range_query(queries_3d)
            batched_mapped = mapped.batch_range_query(queries_3d)
            assert [sorted(r) for r in batched_mapped] == [
                sorted(r) for r in batched_plain
            ]
            points = [(30.0, 60.0, 10.0), (80.0, 80.0, 80.0)]
            assert mapped.batch_knn(points, 6) == plain.batch_knn(points, 6)
            assert mapped.knn(points[0], 6) == plain.knn(points[0], 6)
        finally:
            mapped.close()

    def test_dynamic_workload_parity(self):
        items = make_items(300, seed=9)
        plain = DiskRTree(max_entries=8)
        mapped = DiskRTree(max_entries=8, mapped=True)
        live = {}
        for eid, box in items:
            plain.insert(eid, box)
            mapped.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::3]:
            box = live.pop(eid)
            plain.delete(eid, box)
            mapped.delete(eid, box)
        try:
            assert len(mapped) == len(plain) == len(live)
            for query in make_queries(30, seed=10):
                assert sorted(mapped.range_query(query)) == sorted(
                    plain.range_query(query)
                )
        finally:
            mapped.close()

    def test_zero_copy_reads_keep_pool_residency_bounded(self):
        items = make_items(2000, seed=11)
        tree = DiskRTree(max_entries=16, buffer_pages=8, mapped=True)
        tree.bulk_load(items)
        try:
            tree.clear_cache()
            before = tree.counters.snapshot()
            tree.batch_range_query(make_queries(40, seed=12))
            delta = tree.counters.diff(before)
            # Every pool miss was served as a mapped view, not a copy...
            assert delta.zero_copy_reads > 0
            assert delta.mapped_bytes > 0
            assert delta.pages_read == delta.zero_copy_reads
            # ...and the view frames still obey the pool's capacity bound.
            assert len(tree.pool) <= tree.pool.capacity
            assert tree.pool.misses > 0
        finally:
            tree.close()

    def test_warm_pool_skips_mapped_reads_like_object_mode(self):
        items = make_items(1000, seed=13)
        query = AABB((10, 10, 10), (30, 30, 30))
        tree = DiskRTree(max_entries=32, buffer_pages=512, mapped=True)
        tree.bulk_load(items)
        try:
            tree.clear_cache()
            before = tree.counters.snapshot()
            tree.range_query(query)
            cold = tree.counters.diff(before).zero_copy_reads
            before = tree.counters.snapshot()
            tree.range_query(query)
            assert tree.counters.diff(before).zero_copy_reads == 0  # all hits
            assert cold > 0
        finally:
            tree.close()

    def test_close_unlinks_the_backing_file(self):
        import os

        tree = DiskRTree(max_entries=16, mapped=True)
        tree.bulk_load(make_items(200, seed=14))
        path = tree.store.path
        assert os.path.exists(path)
        tree.close()
        assert not os.path.exists(path)

    def test_rebuild_replaces_the_backing_file(self):
        import os

        tree = DiskRTree(max_entries=16, mapped=True)
        tree.bulk_load(make_items(200, seed=15))
        first = tree.store.path
        tree.bulk_load(make_items(300, seed=16))
        assert tree.store.path != first
        assert not os.path.exists(first)
        tree.close()

    def test_oversized_node_raises_before_write(self):
        # 100 3-d entries need 16 + 100*(48+8) bytes > 4096: the codec must
        # refuse rather than truncate.
        tree = DiskRTree(max_entries=100, mapped=True)
        with pytest.raises(ValueError, match="mapped mode"):
            tree.bulk_load(make_items(500, seed=17))
        tree.close()
