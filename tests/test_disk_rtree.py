"""Disk-resident R-tree: correctness plus page-transfer accounting."""

import pytest

from repro.geometry.aabb import AABB
from repro.indexes.disk_rtree import DiskRTree

from conftest import assert_same_knn, assert_same_range_results, make_items, make_queries


class TestCorrectness:
    def test_range_matches_oracle(self, items_3d, queries_3d):
        tree = DiskRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn_matches_oracle(self, items_3d):
        tree = DiskRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(30, 60, 10), (80, 80, 80)], k=6)

    def test_dynamic_workload(self, queries_3d):
        items = make_items(300, seed=6)
        tree = DiskRTree(max_entries=8)
        live = {}
        for eid, box in items:
            tree.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::3]:
            tree.delete(eid, live.pop(eid))
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_delete_missing(self):
        tree = DiskRTree()
        with pytest.raises(KeyError):
            tree.delete(1, AABB((0, 0, 0), (1, 1, 1)))

    def test_empty_queries(self):
        tree = DiskRTree()
        assert tree.range_query(AABB((0, 0, 0), (1, 1, 1))) == []
        assert tree.knn((0, 0, 0), 4) == []


class TestPageAccounting:
    def test_cold_queries_read_pages(self):
        items = make_items(2000, seed=2)
        tree = DiskRTree(max_entries=32, buffer_pages=16)
        tree.bulk_load(items)
        before = tree.counters.snapshot()
        tree.clear_cache()
        tree.range_query(AABB((20, 20, 20), (40, 40, 40)))
        delta = tree.counters.diff(before)
        assert delta.pages_read > 0

    def test_warm_cache_reads_fewer_pages(self):
        items = make_items(2000, seed=2)
        query = AABB((20, 20, 20), (40, 40, 40))
        tree = DiskRTree(max_entries=32, buffer_pages=512)
        tree.bulk_load(items)
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        cold = tree.counters.diff(before).pages_read
        before = tree.counters.snapshot()
        tree.range_query(query)  # same query, warm pool
        warm = tree.counters.diff(before).pages_read
        assert warm < cold

    def test_clear_cache_restores_cold_behaviour(self):
        items = make_items(1000, seed=3)
        query = AABB((10, 10, 10), (30, 30, 30))
        tree = DiskRTree(max_entries=32, buffer_pages=512)
        tree.bulk_load(items)
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        first = tree.counters.diff(before).pages_read
        tree.clear_cache()
        before = tree.counters.snapshot()
        tree.range_query(query)
        second = tree.counters.diff(before).pages_read
        assert second == first

    def test_page_count_grows_with_data(self):
        small = DiskRTree(max_entries=16)
        small.bulk_load(make_items(100, seed=1))
        large = DiskRTree(max_entries=16)
        large.bulk_load(make_items(2000, seed=1))
        assert large.page_count() > small.page_count()
