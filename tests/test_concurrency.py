"""Concurrent-session safety: threads and tasks sharing one session.

The sessions promise a small but real concurrency contract (ISSUE 6):
``submit()`` and flush-on-read may interleave freely across threads, every
submitted query executes exactly once, handles keep their values, qids stay
unique, and the stats tallies add up.  These tests drive one
:class:`QuerySession` and one :class:`JoinSession` from many threads at
once and check the books afterwards.

``_fork_is_safe`` — the predicate gating every process-pool path — gets
direct unit coverage here for both platform branches (Linux/fork sanctioned,
macOS/spawn refused unless fork is explicitly configured).
"""

from __future__ import annotations

import multiprocessing
import sys
import threading

import pytest

from conftest import knn_pairs, make_items
from repro import (
    AABB,
    JoinSession,
    KNNQuery,
    QuerySession,
    RangeQuery,
    SelfJoinSpec,
    UniformGrid,
)
from repro.engine.session import _fork_is_safe
from repro.indexes.linear_scan import LinearScan

pytestmark = pytest.mark.serving

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))

THREADS = 8
PER_THREAD = 25


def thread_boxes(tid: int) -> list[AABB]:
    import random

    rng = random.Random(7_000 + tid)
    boxes = []
    for _ in range(PER_THREAD):
        lo = [rng.uniform(0.0, 92.0) for _ in range(3)]
        hi = [c + rng.uniform(1.0, 7.0) for c in lo]
        boxes.append(AABB(lo, hi))
    return boxes


@pytest.fixture
def loaded():
    items = make_items(500, seed=17)
    grid = UniformGrid(universe=UNIVERSE, cell_size=5.0)
    grid.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)
    return grid, oracle


class TestConcurrentQuerySession:
    def test_interleaved_submit_and_read_match_oracle(self, loaded):
        grid, oracle = loaded
        session = QuerySession(grid)
        errors: list[str] = []
        barrier = threading.Barrier(THREADS)

        def client(tid: int) -> None:
            barrier.wait()
            for box in thread_boxes(tid):
                handle = session.submit(RangeQuery(box))
                got = sorted(handle.result())  # flush-on-read storms
                expected = sorted(oracle.range_query(box))
                if got != expected:
                    errors.append(f"thread {tid}: {got} != {expected}")

        threads = [threading.Thread(target=client, args=(tid,)) for tid in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert session.pending == 0
        # Exactly-once accounting: every submission executed in some flush,
        # none twice, none lost.
        assert session.stats.submitted == THREADS * PER_THREAD
        assert session.stats.batch.queries == THREADS * PER_THREAD
        assert 1 <= session.stats.flushes <= THREADS * PER_THREAD
        assert 1 <= session.stats.queue_high_water <= THREADS * PER_THREAD

    def test_threaded_submissions_keep_qids_unique_and_handles_ordered(self, loaded):
        grid, oracle = loaded
        session = QuerySession(grid)
        per_thread_handles: dict[int, list] = {}
        barrier = threading.Barrier(THREADS)

        def submitter(tid: int) -> None:
            barrier.wait()
            handles = []
            for i, box in enumerate(thread_boxes(tid)):
                if i % 2:
                    handles.append(session.submit(KNNQuery(tuple(box.lo), k=3)))
                else:
                    handles.append(session.submit(RangeQuery(box)))
            per_thread_handles[tid] = handles

        threads = [threading.Thread(target=submitter, args=(tid,)) for tid in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        qids = [
            handle.query.qid
            for handles in per_thread_handles.values()
            for handle in handles
        ]
        assert len(set(qids)) == THREADS * PER_THREAD  # qid stability
        assert session.stats.queue_high_water == THREADS * PER_THREAD

        session.flush()  # one flush settles every thread's handles
        for tid, handles in per_thread_handles.items():
            for handle, box in zip(handles, thread_boxes(tid)):
                if isinstance(handle.query, KNNQuery):
                    assert knn_pairs(handle.result()) == knn_pairs(
                        oracle.knn(tuple(box.lo), 3)
                    )
                else:
                    assert sorted(handle.result()) == sorted(oracle.range_query(box))
        assert session.stats.flushes == 1

    def test_stats_stay_monotonic_under_interleaving(self, loaded):
        grid, _ = loaded
        session = QuerySession(grid)
        observed: list[tuple[int, int]] = []
        stop = threading.Event()

        def sampler() -> None:
            while not stop.is_set():
                observed.append((session.stats.submitted, session.stats.flushes))

        def client(tid: int) -> None:
            for box in thread_boxes(tid):
                session.submit(RangeQuery(box)).result()

        watcher = threading.Thread(target=sampler)
        watcher.start()
        clients = [threading.Thread(target=client, args=(tid,)) for tid in range(4)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        watcher.join()

        for series in (
            [submitted for submitted, _ in observed],
            [flushes for _, flushes in observed],
        ):
            assert series == sorted(series)  # counters never run backwards


class TestConcurrentJoinSession:
    def test_interleaved_join_clients_match_oracle(self):
        datasets = {tid: make_items(40, seed=900 + tid) for tid in range(THREADS)}
        expected = {
            tid: sorted(JoinSession().run(SelfJoinSpec(items)))
            for tid, items in datasets.items()
        }
        session = JoinSession()
        errors: list[str] = []
        barrier = threading.Barrier(THREADS)

        def client(tid: int) -> None:
            barrier.wait()
            for _ in range(5):
                got = sorted(session.submit(SelfJoinSpec(datasets[tid])).result())
                if got != expected[tid]:
                    errors.append(f"thread {tid} diverged")

        threads = [threading.Thread(target=client, args=(tid,)) for tid in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert session.pending == 0
        assert session.stats.joins == THREADS * 5
        assert session.stats.queue_high_water >= 1


class TestForkIsSafe:
    def test_unsafe_when_fork_is_unavailable(self, monkeypatch):
        monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: ["spawn"])
        assert _fork_is_safe() is False

    def test_linux_with_fork_is_safe(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["fork", "spawn"]
        )
        monkeypatch.setattr(sys, "platform", "linux")
        assert _fork_is_safe() is True

    def test_macos_defaults_to_unsafe(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn", "fork", "forkserver"],
        )
        monkeypatch.setattr(sys, "platform", "darwin")
        monkeypatch.setattr(
            multiprocessing, "get_start_method", lambda allow_none=False: None
        )
        assert _fork_is_safe() is False

    def test_macos_with_explicit_fork_opts_in(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn", "fork", "forkserver"],
        )
        monkeypatch.setattr(sys, "platform", "darwin")
        monkeypatch.setattr(
            multiprocessing, "get_start_method", lambda allow_none=False: "fork"
        )
        assert _fork_is_safe() is True
