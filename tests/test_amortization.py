"""Section 4.1 economics: crossover fractions and strategy choice."""

import pytest

from repro.core.amortization import MaintenanceCosts, Strategy, UpdateEconomics, calibrate
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

from conftest import UNIVERSE_3D, make_items, make_queries


def paper_costs(n: int = 200_000_000) -> MaintenanceCosts:
    """The paper's measured instance: full update 130 s, rebuild 48 s."""
    return MaintenanceCosts(
        update_per_element=130.0 / n,
        rebuild_fixed=48.0,
        query_indexed=0.2,  # 40 s / 200 queries, from the Fig. 2 experiment
        query_scan=5.0,
        n_elements=n,
    )


class TestCrossover:
    def test_paper_number_reproduced(self):
        """48/130 ≈ 0.369 — 'less than 38% of the dataset'."""
        crossover = paper_costs().crossover_fraction()
        assert crossover == pytest.approx(0.369, abs=0.005)
        assert crossover < 0.38

    def test_crossover_capped_at_one(self):
        costs = MaintenanceCosts(
            update_per_element=1e-9,
            rebuild_fixed=100.0,
            query_indexed=0.1,
            query_scan=1.0,
            n_elements=1000,
        )
        assert costs.crossover_fraction() == 1.0


class TestStepCost:
    def test_update_scales_with_changed_fraction(self):
        costs = paper_costs()
        full = costs.step_cost(Strategy.UPDATE, 1.0, queries=0)
        half = costs.step_cost(Strategy.UPDATE, 0.5, queries=0)
        assert full == pytest.approx(130.0)
        assert half == pytest.approx(65.0)

    def test_rebuild_flat_in_changed_fraction(self):
        costs = paper_costs()
        assert costs.step_cost(Strategy.REBUILD, 0.1, 10) == costs.step_cost(
            Strategy.REBUILD, 1.0, 10
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            paper_costs().step_cost(Strategy.UPDATE, 1.5, 0)


class TestChoice:
    def test_full_change_prefers_rebuild(self):
        economics = UpdateEconomics(paper_costs())
        assert economics.choose(changed_fraction=1.0, queries=1000) is Strategy.REBUILD

    def test_small_change_prefers_update(self):
        economics = UpdateEconomics(paper_costs())
        assert economics.choose(changed_fraction=0.05, queries=1000) is Strategy.UPDATE

    def test_few_queries_prefer_scan(self):
        """'rebuilding an index may no longer pay off as the cost cannot be
        amortized over enough queries'."""
        economics = UpdateEconomics(paper_costs())
        assert economics.choose(changed_fraction=1.0, queries=1) is Strategy.SCAN

    def test_choice_flips_exactly_at_crossover(self):
        costs = paper_costs()
        economics = UpdateEconomics(costs)
        crossover = costs.crossover_fraction()
        assert economics.choose(crossover - 0.01, queries=10_000) is Strategy.UPDATE
        assert economics.choose(crossover + 0.01, queries=10_000) is Strategy.REBUILD

    def test_amortization_queries(self):
        economics = UpdateEconomics(paper_costs())
        threshold = economics.amortization_queries()
        assert threshold == pytest.approx(48.0 / 4.8)

    def test_amortization_infinite_when_index_slower(self):
        costs = MaintenanceCosts(
            update_per_element=0.0,
            rebuild_fixed=1.0,
            query_indexed=2.0,
            query_scan=1.0,
            n_elements=10,
        )
        assert UpdateEconomics(costs).amortization_queries() == float("inf")


class TestCalibrate:
    def test_measures_real_index(self):
        items = make_items(800, seed=5)
        moves = [
            (eid, box, box.expanded(0.01)) for eid, box in items[:100]
        ]
        queries = make_queries(5, extent=10.0, seed=6)
        costs = calibrate(
            index_factory=lambda: RTree(max_entries=16),
            items=items,
            moved_items=moves,
            query_boxes=queries,
            scan_factory=LinearScan,
        )
        assert costs.update_per_element > 0
        assert costs.rebuild_fixed > 0
        assert costs.query_indexed > 0
        assert costs.query_scan > 0
        assert costs.n_elements == 800
        assert 0 < costs.crossover_fraction() <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            calibrate(RTree, [], [], [], LinearScan)
