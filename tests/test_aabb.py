"""Unit and property tests for the AABB value type."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.aabb import AABB, union_all


def boxes(dims: int = 3, span: float = 100.0):
    """Hypothesis strategy for valid boxes."""

    def build(corners):
        lo = [min(a, b) for a, b in corners]
        hi = [max(a, b) for a, b in corners]
        return AABB(lo, hi)

    coordinate = st.floats(-span, span, allow_nan=False, allow_infinity=False)
    return st.lists(st.tuples(coordinate, coordinate), min_size=dims, max_size=dims).map(build)


class TestConstruction:
    def test_valid(self):
        box = AABB((0, 0), (1, 2))
        assert box.lo == (0.0, 0.0)
        assert box.hi == (1.0, 2.0)
        assert box.dims == 2

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="lo > hi"):
            AABB((1, 0), (0, 1))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError, match="dims"):
            AABB((0, 0), (1, 1, 1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            AABB((), ())

    def test_immutable(self):
        box = AABB((0,), (1,))
        with pytest.raises(AttributeError):
            box.lo = (5,)

    def test_from_point(self):
        box = AABB.from_point((1, 2, 3))
        assert box.is_degenerate()
        assert box.volume() == 0.0

    def test_from_center_scalar(self):
        box = AABB.from_center((5, 5), 1.0)
        assert box.lo == (4.0, 4.0)
        assert box.hi == (6.0, 6.0)

    def test_from_center_vector(self):
        box = AABB.from_center((5, 5), (1.0, 2.0))
        assert box.lo == (4.0, 3.0)
        assert box.hi == (6.0, 7.0)

    def test_from_center_mismatch(self):
        with pytest.raises(ValueError):
            AABB.from_center((5, 5), (1.0, 2.0, 3.0))


class TestPredicates:
    def test_intersects_overlap(self):
        assert AABB((0, 0), (2, 2)).intersects(AABB((1, 1), (3, 3)))

    def test_intersects_touching_faces(self):
        assert AABB((0, 0), (1, 1)).intersects(AABB((1, 0), (2, 1)))

    def test_disjoint(self):
        assert not AABB((0, 0), (1, 1)).intersects(AABB((2, 2), (3, 3)))

    def test_contains_point_boundary(self):
        box = AABB((0, 0), (1, 1))
        assert box.contains_point((0, 0))
        assert box.contains_point((1, 1))
        assert not box.contains_point((1.0001, 0.5))

    def test_contains_box(self):
        outer = AABB((0, 0), (10, 10))
        assert outer.contains_box(AABB((1, 1), (9, 9)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(AABB((1, 1), (11, 9)))


class TestCombination:
    def test_union(self):
        union = AABB((0, 0), (1, 1)).union(AABB((2, 2), (3, 3)))
        assert union == AABB((0, 0), (3, 3))

    def test_intersection_some(self):
        overlap = AABB((0, 0), (2, 2)).intersection(AABB((1, 1), (3, 3)))
        assert overlap == AABB((1, 1), (2, 2))

    def test_intersection_none(self):
        assert AABB((0, 0), (1, 1)).intersection(AABB((5, 5), (6, 6))) is None

    def test_overlap_volume(self):
        assert AABB((0, 0), (2, 2)).overlap_volume(AABB((1, 1), (3, 3))) == 1.0
        assert AABB((0, 0), (1, 1)).overlap_volume(AABB((5, 5), (6, 6))) == 0.0

    def test_enlargement(self):
        box = AABB((0, 0), (1, 1))
        assert box.enlargement(AABB((0, 0), (1, 1))) == 0.0
        assert box.enlargement(AABB((0, 0), (2, 1))) == pytest.approx(1.0)

    def test_expanded(self):
        grown = AABB((0, 0), (1, 1)).expanded(0.5)
        assert grown == AABB((-0.5, -0.5), (1.5, 1.5))

    def test_union_all(self):
        hull = union_all([AABB((0,), (1,)), AABB((5,), (6,)), AABB((-2,), (-1,))])
        assert hull == AABB((-2,), (6,))

    def test_union_all_empty(self):
        with pytest.raises(ValueError):
            union_all([])


class TestDistances:
    def test_min_distance_inside(self):
        assert AABB((0, 0), (2, 2)).min_distance_to_point((1, 1)) == 0.0

    def test_min_distance_outside(self):
        assert AABB((0, 0), (1, 1)).min_distance_to_point((4, 5)) == pytest.approx(5.0)

    def test_max_distance(self):
        assert AABB((0, 0), (1, 1)).max_distance_to_point((0, 0)) == pytest.approx(
            math.sqrt(2)
        )

    def test_box_gap(self):
        a = AABB((0, 0), (1, 1))
        b = AABB((4, 5), (6, 7))
        assert a.min_distance_to_box(b) == pytest.approx(5.0)
        assert a.min_distance_to_box(a) == 0.0


class TestValueSemantics:
    def test_eq_hash(self):
        a = AABB((0, 1), (2, 3))
        b = AABB((0, 1), (2, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != AABB((0, 1), (2, 4))

    def test_iter_unpack(self):
        lo, hi = AABB((1, 2), (3, 4))
        assert lo == (1.0, 2.0)
        assert hi == (3.0, 4.0)

    def test_repr(self):
        assert "AABB" in repr(AABB((0,), (1,)))


class TestProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), boxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    def test_intersection_iff_intersects(self, a, b):
        assert (a.intersection(b) is not None) == a.intersects(b)

    @given(boxes(), boxes())
    def test_overlap_volume_matches_intersection(self, a, b):
        overlap = a.intersection(b)
        volume = a.overlap_volume(b)
        if overlap is None:
            assert volume == 0.0
        else:
            assert volume == pytest.approx(overlap.volume(), abs=1e-6)

    @given(boxes())
    def test_volume_margin_nonnegative(self, box):
        assert box.volume() >= 0.0
        assert box.margin() >= 0.0

    @given(boxes(), st.floats(0, 10, allow_nan=False))
    def test_expanded_contains_original(self, box, amount):
        assert box.expanded(amount).contains_box(box)

    @given(boxes(), boxes())
    def test_min_distance_zero_iff_intersecting(self, a, b):
        gap = a.min_distance_to_box(b)
        if a.intersects(b):
            assert gap == 0.0
        else:
            assert gap > 0.0
