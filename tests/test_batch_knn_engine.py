"""Oracle-driven suite for the vectorized batch-kNN kernels.

Every index's ``batch_knn`` must match the :class:`LinearScan` oracle as an
*exact ordered list* of ``(distance, id)`` pairs — the deterministic
tie-break contract (``repro/indexes/base.py``) leaves nothing to sort.  The
hypothesis suites drive that comparison with generated datasets; the
deterministic tests pin the adversarial corners: ``k = 0``, ``k >= n``,
co-located/duplicate geometry, empty indexes, probes far outside the data
bounds and batches full of repeated queries.  The engine and sim-monitor
tests cover the wiring: ``BatchQueryEngine.knn`` dedup fan-out and the
``NearestNeighborMonitor`` batch path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import UNIVERSE_3D, knn_pairs, make_items
from repro.core.adaptive import AdaptiveSimulationIndex
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.engine import BatchQueryEngine
from repro.geometry.aabb import AABB
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.kdtree import KDTree
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import RTree
from repro.sim.monitors import NearestNeighborMonitor

# KDTree is a point access method: it joins the harness on point datasets
# only, the rest also take volumetric boxes.
BOX_FACTORIES = {
    "linear_scan": LinearScan,
    "uniform_grid": UniformGrid,
    "multires_grid": lambda: MultiResolutionGrid(levels=3),
    "rtree": lambda: RTree(max_entries=8),
    "rstar": lambda: RStarTree(max_entries=8),
    "disk_rtree": lambda: DiskRTree(max_entries=8),
    "adaptive": lambda: AdaptiveSimulationIndex(universe=UNIVERSE_3D),
}
ALL_FACTORIES = {**BOX_FACTORIES, "kdtree": lambda: KDTree(bucket_size=8)}

BOX_PARAMS = pytest.mark.parametrize(
    "factory", BOX_FACTORIES.values(), ids=BOX_FACTORIES.keys()
)
ALL_PARAMS = pytest.mark.parametrize(
    "factory", ALL_FACTORIES.values(), ids=ALL_FACTORIES.keys()
)


def build(factory, items):
    index = factory()
    index.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)
    return index, oracle


def assert_batch_matches(index, oracle, points, k):
    got = index.batch_knn(points, k)
    assert len(got) == len(points)
    for answer, point in zip(got, points):
        expected = oracle.knn(tuple(point), k)
        assert knn_pairs(answer) == knn_pairs(expected), (
            f"batch kNN mismatch at {tuple(point)} (k={k})"
        )


def points_only(factory) -> bool:
    return factory is ALL_FACTORIES["kdtree"]


# float32-representable coordinates keep distances well clear of the
# vectorized kernels' squared-gap underflow (~1e-154), so the exact ordered
# comparison cannot flake on sub-ulp noise.
coordinate = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def point_batches(draw, dims: int, max_count: int):
    count = draw(st.integers(0, max_count))
    points = [tuple(draw(coordinate) for _ in range(dims)) for _ in range(count)]
    # Force duplicate probes into most non-empty batches.
    if points and draw(st.booleans()):
        points = points + [points[0]]
    return points


@st.composite
def knn_dataset(draw, dims: int, points: bool):
    count = draw(st.integers(0, 40))
    items = []
    for eid in range(count):
        a = [draw(coordinate) for _ in range(dims)]
        if points or draw(st.booleans()):
            items.append((eid, AABB(a, a)))
            continue
        b = [draw(coordinate) for _ in range(dims)]
        lo = [min(x, y) for x, y in zip(a, b)]
        hi = [max(x, y) for x, y in zip(a, b)]
        items.append((eid, AABB(lo, hi)))
    # Co-locate a run of elements on the first geometry to force exact ties.
    if items and draw(st.booleans()):
        tied = draw(st.integers(1, 3))
        base = items[0][1]
        for extra in range(tied):
            items.append((count + extra, base))
    return items


class TestBatchKnnMatchesOracle:
    @ALL_PARAMS
    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), dims=st.sampled_from([2, 3]), k=st.integers(0, 8))
    def test_matches_linear_scan(self, factory, data, dims, k):
        if factory is ALL_FACTORIES["adaptive"] and dims != 3:
            dims = 3  # the adaptive facade is bound to the 3-d universe
        items = data.draw(knn_dataset(dims, points=points_only(factory)))
        points = data.draw(point_batches(dims, 6))
        index, oracle = build(factory, items)
        assert_batch_matches(index, oracle, points, k)

    @ALL_PARAMS
    def test_empty_batch(self, factory):
        index, _ = build(factory, make_items(40, seed=2, points=True))
        assert index.batch_knn([], 3) == []
        assert index.batch_knn(np.empty((0, 3)), 3) == []

    @ALL_PARAMS
    def test_k_zero(self, factory):
        index, _ = build(factory, make_items(40, seed=3, points=True))
        assert index.batch_knn([(1.0, 2.0, 3.0), (50.0, 50.0, 50.0)], 0) == [[], []]

    @ALL_PARAMS
    def test_empty_index(self, factory):
        index, _ = build(factory, [])
        assert index.batch_knn([(0.0, 0.0, 0.0)], 5) == [[]]

    @ALL_PARAMS
    def test_k_exceeds_n(self, factory):
        items = make_items(17, seed=4, points=True)
        index, oracle = build(factory, items)
        points = np.array([[10.0, 20.0, 30.0], [95.0, 5.0, 60.0]])
        got = index.batch_knn(points, 100)
        for answer in got:
            assert len(answer) == len(items)
        assert_batch_matches(index, oracle, points, 100)

    @ALL_PARAMS
    def test_queries_far_outside_bounds(self, factory):
        items = make_items(60, seed=5, points=points_only(factory))
        index, oracle = build(factory, items)
        points = np.array(
            [[1e6, 1e6, 1e6], [-1e6, 50.0, 50.0], [0.0, 0.0, -1e7]]
        )
        assert_batch_matches(index, oracle, points, 4)

    @ALL_PARAMS
    def test_colocated_elements_tie_break_by_id(self, factory):
        """Five elements on one point: ids must come back ascending."""
        spot = AABB((10.0, 10.0, 10.0), (10.0, 10.0, 10.0))
        items = [(eid, spot) for eid in (7, 3, 11, 5, 2)]
        items += [(1, AABB((40.0, 40.0, 40.0), (40.0, 40.0, 40.0)))]
        index, oracle = build(factory, items)
        [answer] = index.batch_knn([(10.0, 10.0, 10.0)], 3)
        assert [eid for _, eid in answer] == [2, 3, 5]
        assert [d for d, _ in answer] == [0.0, 0.0, 0.0]
        assert_batch_matches(index, oracle, [(10.0, 10.0, 10.0), (39.0, 40.0, 40.0)], 6)

    @ALL_PARAMS
    def test_mixed_duplicate_batch(self, factory):
        """Repeated probes inside one batch answer identically each time."""
        items = make_items(120, seed=6, points=points_only(factory))
        index, oracle = build(factory, items)
        base = [(20.0, 30.0, 40.0), (70.0, 10.0, 90.0), (5.0, 5.0, 5.0)]
        batch = [base[0], base[1], base[0], base[2], base[1], base[0]]
        got = index.batch_knn(batch, 5)
        assert knn_pairs(got[0]) == knn_pairs(got[2]) == knn_pairs(got[5])
        assert knn_pairs(got[1]) == knn_pairs(got[4])
        assert_batch_matches(index, oracle, batch, 5)

    @BOX_PARAMS
    def test_batch_after_mutations(self, factory):
        """Mutations must be visible to the next batch (cache patching)."""
        items = make_items(200, seed=8)
        index = factory()
        index.bulk_load(items)
        points = np.array([[10.0, 20.0, 30.0], [80.0, 10.0, 40.0], [2.0, 2.0, 2.0]])
        index.batch_knn(points, 4)  # warm any lazy cache
        index.delete(*items[0])
        newcomer = AABB((1.0, 1.0, 1.0), (3.0, 3.0, 3.0))
        index.insert(10_000, newcomer)
        oracle = LinearScan()
        oracle.bulk_load(items[1:] + [(10_000, newcomer)])
        assert_batch_matches(index, oracle, points, 4)

    @ALL_PARAMS
    def test_scalar_knn_matches_oracle_exactly(self, factory):
        """The scalar path obeys the same (distance, id) contract."""
        items = make_items(150, seed=9, points=points_only(factory))
        index, oracle = build(factory, items)
        for point in [(25.0, 25.0, 25.0), (90.0, 5.0, 50.0), (-10.0, 110.0, 50.0)]:
            assert knn_pairs(index.knn(point, 7)) == knn_pairs(oracle.knn(point, 7))


class TestEngineAndMonitorWiring:
    def test_engine_knn_dedup_fans_results_back_out(self):
        items = make_items(300, seed=11)
        index = UniformGrid()
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        engine = BatchQueryEngine.kernel(index)
        point = (33.0, 44.0, 55.0)
        results = engine.knn([point] * 5, 6)
        assert engine.stats.deduplicated == 4
        expected = knn_pairs(oracle.knn(point, 6))
        assert all(knn_pairs(r) == expected for r in results)
        # Fanned-out lists must be independent copies.
        results[0].append((-1.0, -1))
        assert results[1] != results[0]

    def test_nearest_neighbor_monitor_batch_equals_loop(self):
        items = make_items(250, seed=12)
        index = UniformGrid()
        index.bulk_load(items)
        looped = NearestNeighborMonitor(UNIVERSE_3D, probes_per_step=20, k=3, seed=5)
        batched = NearestNeighborMonitor(UNIVERSE_3D, probes_per_step=20, k=3, seed=5)
        looped.observe(index, step=0)
        batched.observe_batch(BatchQueryEngine.kernel(index), step=0)
        assert looped.nearest_ids == batched.nearest_ids
        assert np.allclose(looped.kth_distances, batched.kth_distances)

    def test_monitor_runs_inside_simulation(self):
        from repro.sim.engine import TimeSteppedSimulation
        from repro.sim.plasticity import PlasticityModel

        model = PlasticityModel(dict(make_items(40, seed=3)), UNIVERSE_3D, seed=3)
        index = UniformGrid(universe=UNIVERSE_3D)
        monitor = NearestNeighborMonitor(UNIVERSE_3D, probes_per_step=10, k=2, seed=1)
        sim = TimeSteppedSimulation(model, index, monitors=[monitor])
        sim.run(3)
        assert len(monitor.kth_distances) == 3
        assert all(len(step) == 10 for step in monitor.kth_distances)
