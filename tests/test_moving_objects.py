"""Moving-object indexes: LUR, buffered, throwaway, TPR."""

import pytest

from repro.datasets.trajectories import BrownianMotion, LinearMotion, PlasticityMotion, apply_moves
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.moving.buffered_rtree import BufferedRTree
from repro.moving.lur_tree import LURTree
from repro.moving.throwaway import ThrowawayIndex
from repro.moving.tpr import TPRIndex

from conftest import (
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)


def _run_motion(index, items, steps=3, sigma=0.05, seed=0, advance_hook=None):
    """Drive Brownian motion through an index, returning the final state."""
    live = dict(items)
    motion = BrownianMotion(sigma=sigma, universe=UNIVERSE_3D, seed=seed)
    for _ in range(steps):
        moves = motion.step(live)
        if advance_hook is not None:
            advance_hook(moves)
        else:
            for eid, old, new in moves:
                index.update(eid, old, new)
        apply_moves(live, moves)
    return live


class TestLURTree:
    def test_oracle_after_motion(self, items_3d, queries_3d):
        index = LURTree(grace=0.5)
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert_same_range_results(index, list(live.items()), queries_3d)

    def test_knn_after_motion(self, items_3d):
        index = LURTree(grace=0.5)
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert_same_knn(index, list(live.items()), [(40, 40, 40)], k=6)

    def test_small_motion_is_lazy(self, items_3d):
        index = LURTree(grace=1.0)
        index.bulk_load(items_3d)
        _run_motion(index, items_3d, sigma=0.01)
        assert index.lazy_updates > 0
        assert index.structural_updates < index.lazy_updates / 10

    def test_large_motion_is_structural(self, items_3d):
        index = LURTree(grace=0.05)
        index.bulk_load(items_3d)
        _run_motion(index, items_3d, sigma=5.0)
        assert index.structural_updates > index.lazy_updates

    def test_refinement_shifts_cost_to_queries(self, items_3d, queries_3d):
        """The paper's trade-off: loose boxes mean extra refine tests."""
        index = LURTree(grace=2.0)
        index.bulk_load(items_3d)
        for query in queries_3d:
            index.range_query(query)
        assert index.counters.refine_tests > 0

    def test_insert_delete(self):
        index = LURTree(grace=0.5)
        box = AABB((1, 1, 1), (2, 2, 2))
        index.insert(1, box)
        assert index.range_query(AABB((0, 0, 0), (3, 3, 3))) == [1]
        index.delete(1, box)
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.delete(1, box)


class TestBufferedRTree:
    def test_oracle_with_pending_buffer(self, items_3d, queries_3d):
        index = BufferedRTree(buffer_capacity=10_000)  # never flush
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert index.pending_operations > 0  # buffer really is pending
        assert_same_range_results(index, list(live.items()), queries_3d)

    def test_oracle_after_flush(self, items_3d, queries_3d):
        index = BufferedRTree(buffer_capacity=50)
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert index.flushes > 0
        assert_same_range_results(index, list(live.items()), queries_3d)

    def test_knn_with_buffer(self, items_3d):
        index = BufferedRTree(buffer_capacity=10_000)
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert_same_knn(index, list(live.items()), [(70, 30, 50)], k=5)

    def test_buffered_insert_and_delete_visible(self):
        index = BufferedRTree(buffer_capacity=100)
        index.bulk_load([(1, AABB((0, 0, 0), (1, 1, 1)))])
        index.insert(2, AABB((5, 5, 5), (6, 6, 6)))
        assert sorted(index.range_query(AABB((0, 0, 0), (10, 10, 10)))) == [1, 2]
        index.delete(1, AABB((0, 0, 0), (1, 1, 1)))
        assert index.range_query(AABB((0, 0, 0), (10, 10, 10))) == [2]

    def test_query_pays_buffer_pass(self, items_3d):
        """'buffer and index need to be checked' — counted."""
        index = BufferedRTree(buffer_capacity=10_000)
        index.bulk_load(items_3d)
        _run_motion(index, items_3d, steps=1)
        before = index.counters.snapshot()
        index.range_query(AABB((40, 40, 40), (45, 45, 45)))
        delta = index.counters.diff(before)
        assert delta.elem_tests >= index.pending_operations


class TestThrowawayIndex:
    def test_oracle_after_motion(self, items_3d, queries_3d):
        index = ThrowawayIndex(universe=UNIVERSE_3D)
        index.bulk_load(items_3d)
        live = _run_motion(index, items_3d)
        assert_same_range_results(index, list(live.items()), queries_3d)
        assert index.rebuilds >= 2  # one per queried step

    def test_explicit_refresh_controls_staleness(self, items_3d):
        index = ThrowawayIndex(universe=UNIVERSE_3D, auto_refresh=False)
        index.bulk_load(items_3d)
        box = items_3d[0][1]
        far = AABB((90, 90, 90), (91, 91, 91))
        index.update(0, box, far)
        assert index.is_stale
        index.refresh()
        assert not index.is_stale
        assert 0 in index.range_query(AABB((89, 89, 89), (92, 92, 92)))

    def test_updates_touch_no_structure(self, items_3d):
        index = ThrowawayIndex(universe=UNIVERSE_3D)
        index.bulk_load(items_3d)
        rebuilds_before = index.rebuilds
        _run_motion(index, items_3d, steps=2)
        assert index.rebuilds == rebuilds_before  # no queries -> no rebuilds


class TestTPRIndex:
    def test_oracle_after_motion(self, items_3d, queries_3d):
        index = TPRIndex(max_speed=0.2, horizon=5)
        index.bulk_load(items_3d)
        live = dict(items_3d)
        motion = BrownianMotion(sigma=0.05, universe=UNIVERSE_3D, seed=2)
        for _ in range(4):
            moves = motion.step(live)
            index.advance(moves)
            apply_moves(live, moves)
        assert_same_range_results(index, list(live.items()), queries_3d)

    def test_predictable_motion_needs_few_reanchors(self):
        items = make_items(200, seed=4, max_extent=0.5)
        index = TPRIndex(max_speed=0.3, horizon=10)
        index.bulk_load(items)
        live = dict(items)
        motion = LinearMotion(speed=0.2, universe=UNIVERSE_3D, seed=5)
        for _ in range(8):
            moves = motion.step(live)
            index.advance(moves)
            apply_moves(live, moves)
        linear_reanchors = index.re_anchors

        index2 = TPRIndex(max_speed=0.3, horizon=10)
        index2.bulk_load(items)
        live = dict(items)
        brownian = BrownianMotion(sigma=0.8, universe=UNIVERSE_3D, seed=5)
        for _ in range(8):
            moves = brownian.step(live)
            index2.advance(moves)
            apply_moves(live, moves)
        assert index2.re_anchors > linear_reanchors

    def test_knn(self, items_3d):
        index = TPRIndex()
        index.bulk_load(items_3d)
        assert_same_knn(index, items_3d, [(10, 90, 10)], k=4)

    def test_insert_delete(self):
        index = TPRIndex()
        box = AABB((1, 1, 1), (2, 2, 2))
        index.insert(7, box)
        assert len(index) == 1
        index.delete(7, box)
        assert len(index) == 0
