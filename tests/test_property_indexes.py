"""Cross-index property suite: every index equals the linear-scan oracle.

These are the library's strongest guarantees: hypothesis generates datasets,
queries and update sequences, and each index must agree with the scan exactly
— ranges as sets, kNN as distance multisets — both after bulk load and after
dynamic churn.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.geometry.aabb import AABB
from repro.indexes.crtree import CRTree
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.linear_scan import LinearScan
from repro.indexes.loose_octree import LooseOctree
from repro.indexes.octree import Octree
from repro.indexes.rplus import RPlusTree
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import RTree
from repro.mesh.flat import FLAT
from repro.moving.buffered_rtree import BufferedRTree
from repro.moving.lur_tree import LURTree
from repro.moving.throwaway import ThrowawayIndex

UNIVERSE = AABB((0.0, 0.0, 0.0), (32.0, 32.0, 32.0))

INDEX_FACTORIES = [
    pytest.param(lambda: RTree(max_entries=6), id="rtree"),
    pytest.param(lambda: RStarTree(max_entries=6), id="rstar"),
    pytest.param(lambda: RPlusTree(max_entries=6, universe=UNIVERSE), id="rplus"),
    pytest.param(lambda: DiskRTree(max_entries=6), id="disk-rtree"),
    pytest.param(lambda: CRTree(max_entries=6), id="crtree"),
    pytest.param(lambda: Octree(universe=UNIVERSE, capacity=6), id="octree"),
    pytest.param(lambda: LooseOctree(universe=UNIVERSE), id="loose-octree"),
    pytest.param(lambda: UniformGrid(universe=UNIVERSE, cell_size=2.5), id="grid"),
    pytest.param(lambda: MultiResolutionGrid(universe=UNIVERSE), id="multigrid"),
    pytest.param(lambda: FLAT(universe=UNIVERSE), id="flat"),
    pytest.param(lambda: LURTree(grace=0.4), id="lur"),
    pytest.param(lambda: BufferedRTree(buffer_capacity=16), id="buffered"),
    pytest.param(lambda: ThrowawayIndex(universe=UNIVERSE), id="throwaway"),
]

coordinate = st.floats(0.0, 30.0, allow_nan=False, allow_infinity=False)
extent = st.floats(0.0, 4.0, allow_nan=False)


@st.composite
def boxes(draw):
    lo = [draw(coordinate) for _ in range(3)]
    size = [min(draw(extent), 32.0 - c) for c in lo]
    return AABB(lo, [c + s for c, s in zip(lo, size)])


@st.composite
def datasets(draw):
    n = draw(st.integers(1, 60))
    return [(eid, draw(boxes())) for eid in range(n)]


@pytest.mark.parametrize("factory", INDEX_FACTORIES)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_range_equals_scan_after_bulk_load(factory, data):
    items = data.draw(datasets())
    query = data.draw(boxes())
    index = factory()
    index.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)
    assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))


@pytest.mark.parametrize("factory", INDEX_FACTORIES)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_knn_distances_equal_scan(factory, data):
    items = data.draw(datasets())
    point = tuple(data.draw(coordinate) for _ in range(3))
    k = data.draw(st.integers(1, 8))
    index = factory()
    index.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)
    got = [round(d, 6) for d, _ in index.knn(point, k)]
    expected = [round(d, 6) for d, _ in oracle.knn(point, k)]
    assert got == expected


@pytest.mark.parametrize("factory", INDEX_FACTORIES)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_dynamic_churn_equals_scan(factory, data):
    """Insert / delete / update sequences preserve oracle equivalence."""
    items = data.draw(datasets())
    index = factory()
    oracle = LinearScan()
    index.bulk_load(items)
    oracle.bulk_load(items)
    live = dict(items)
    next_id = len(items)

    operations = data.draw(st.lists(st.sampled_from(["insert", "delete", "update"]), max_size=12))
    for operation in operations:
        if operation == "insert":
            box = data.draw(boxes())
            index.insert(next_id, box)
            oracle.insert(next_id, box)
            live[next_id] = box
            next_id += 1
        elif operation == "delete" and live:
            eid = data.draw(st.sampled_from(sorted(live)))
            index.delete(eid, live[eid])
            oracle.delete(eid, live[eid])
            del live[eid]
        elif operation == "update" and live:
            eid = data.draw(st.sampled_from(sorted(live)))
            new_box = data.draw(boxes())
            index.update(eid, live[eid], new_box)
            oracle.update(eid, live[eid], new_box)
            live[eid] = new_box

    query = data.draw(boxes())
    assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))
    assert len(index) == len(live)
