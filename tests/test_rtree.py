"""R-tree family: Guttman R-tree, R*-tree, STR bulk loading."""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.indexes.bulkload import str_pack
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import Node, RTree, _linear_split, _quadratic_split

from conftest import assert_same_knn, assert_same_range_results, make_items, make_queries


class TestConstruction:
    def test_rejects_small_capacity(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_rejects_unknown_split(self):
        with pytest.raises(ValueError):
            RTree(split="magic")

    def test_rejects_bad_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_index(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_query(AABB((0, 0, 0), (1, 1, 1))) == []
        assert tree.knn((0, 0, 0), 3) == []


class TestBulkLoad:
    def test_str_packing_structure(self):
        items = make_items(500, seed=3)
        tree = RTree(max_entries=16)
        tree.bulk_load(items)
        assert len(tree) == 500
        tree.check_invariants()
        # STR-packed trees are near-minimal height.
        assert tree.height <= 4

    def test_bulk_load_replaces(self):
        tree = RTree()
        tree.bulk_load(make_items(100, seed=1))
        tree.bulk_load(make_items(50, seed=2))
        assert len(tree) == 50

    def test_bulk_load_empty(self):
        tree = RTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_duplicate_ids_rejected(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            RTree().bulk_load([(1, box), (1, box)])

    def test_str_pack_group_sizes(self):
        items = make_items(300, seed=5)
        root, height, node_count = str_pack(items, 16, Node)
        stack = [(root, height - 1)]
        seen_items = 0
        counted_nodes = 0
        while stack:
            node, level = stack.pop()
            counted_nodes += 1
            assert len(node.entries) <= 16
            if node.is_leaf:
                assert level == 0
                seen_items += len(node.entries)
            else:
                for entry_box, child in node.entries:
                    assert entry_box.contains_box(child.mbr())
                    stack.append((child, level - 1))
        assert seen_items == 300
        assert counted_nodes == node_count


class TestQueriesMatchOracle:
    @pytest.mark.parametrize("split", ["quadratic", "linear"])
    def test_range_after_bulk_load(self, split, items_3d, queries_3d):
        tree = RTree(max_entries=12, split=split)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_range_after_inserts(self, items_3d, queries_3d):
        tree = RTree(max_entries=8)
        for eid, box in items_3d:
            tree.insert(eid, box)
        tree.check_invariants()
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn(self, items_3d):
        tree = RTree(max_entries=12)
        tree.bulk_load(items_3d)
        points = [(10, 10, 10), (50, 50, 50), (99, 1, 99)]
        assert_same_knn(tree, items_3d, points, k=7)

    def test_knn_k_exceeds_size(self):
        items = make_items(5, seed=2)
        tree = RTree()
        tree.bulk_load(items)
        assert len(tree.knn((0, 0, 0), 50)) == 5


class TestMaintenance:
    def test_delete_missing_raises(self):
        tree = RTree()
        tree.insert(1, AABB((0, 0, 0), (1, 1, 1)))
        with pytest.raises(KeyError):
            tree.delete(2, AABB((0, 0, 0), (1, 1, 1)))
        with pytest.raises(KeyError):
            tree.delete(1, AABB((0, 0, 0), (2, 2, 2)))

    def test_delete_all_then_reuse(self):
        items = make_items(120, seed=9)
        tree = RTree(max_entries=8)
        tree.bulk_load(items)
        for eid, box in items:
            tree.delete(eid, box)
        assert len(tree) == 0
        tree.insert(0, AABB((0, 0, 0), (1, 1, 1)))
        assert tree.range_query(AABB((0, 0, 0), (2, 2, 2))) == [0]

    def test_interleaved_workload_preserves_correctness(self, queries_3d):
        rng = np.random.default_rng(13)
        tree = RTree(max_entries=8)
        live: dict[int, AABB] = {}
        next_id = 0
        for round_index in range(6):
            for _ in range(80):
                lo = rng.uniform(0, 95, 3)
                box = AABB(lo, lo + rng.uniform(0.1, 4, 3))
                tree.insert(next_id, box)
                live[next_id] = box
                next_id += 1
            victims = list(live)[:: 3 + round_index]
            for eid in victims:
                tree.delete(eid, live.pop(eid))
            tree.check_invariants()
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_update_moves_element(self):
        tree = RTree()
        old = AABB((0, 0, 0), (1, 1, 1))
        new = AABB((50, 50, 50), (51, 51, 51))
        tree.insert(1, old)
        tree.update(1, old, new)
        assert tree.range_query(AABB((49, 49, 49), (52, 52, 52))) == [1]
        assert tree.range_query(AABB((0, 0, 0), (2, 2, 2))) == []

    def test_node_count_tracks_structure(self):
        items = make_items(200, seed=21)
        tree = RTree(max_entries=8)
        for eid, box in items:
            tree.insert(eid, box)
        assert tree.node_count >= len(items) // 8


class TestSplits:
    def _entries(self, n, seed):
        return [(box, eid) for eid, box in make_items(n, seed=seed)]

    @pytest.mark.parametrize("split_fn", [_quadratic_split, _linear_split])
    def test_split_partitions_entries(self, split_fn):
        entries = self._entries(17, seed=2)
        group_a, group_b = split_fn(entries, min_entries=4)
        assert len(group_a) + len(group_b) == 17
        assert len(group_a) >= 4
        assert len(group_b) >= 4
        ids = sorted(ref for _, ref in group_a + group_b)
        assert ids == sorted(ref for _, ref in entries)


class TestCounters:
    def test_query_charges_tests_and_bytes(self, items_3d):
        tree = RTree(max_entries=12)
        tree.bulk_load(items_3d)
        before = tree.counters.snapshot()
        tree.range_query(AABB((10, 10, 10), (40, 40, 40)))
        delta = tree.counters.diff(before)
        assert delta.elem_tests > 0
        assert delta.node_tests > 0
        assert delta.bytes_touched > 0
        assert delta.pointer_follows > 0


class TestRStar:
    def test_queries_match_oracle(self, items_3d, queries_3d):
        tree = RStarTree(max_entries=8)
        for eid, box in items_3d:
            tree.insert(eid, box)
        tree.check_invariants()
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn_matches(self, items_3d):
        tree = RStarTree(max_entries=8)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(25, 25, 25)], k=5)

    def test_dynamic_delete(self, queries_3d):
        items = make_items(250, seed=4)
        tree = RStarTree(max_entries=8)
        for eid, box in items:
            tree.insert(eid, box)
        live = dict(items)
        for eid in list(live)[::2]:
            tree.delete(eid, live.pop(eid))
        tree.check_invariants()
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_less_overlap_than_guttman(self):
        """R*'s raison d'être: lower inner-node overlap on clustered data.

        Measured as node_tests needed for the same query workload after
        identical dynamic insertion."""
        items = make_items(600, seed=8, max_extent=6.0)
        plain = RTree(max_entries=8)
        star = RStarTree(max_entries=8)
        for eid, box in items:
            plain.insert(eid, box)
            star.insert(eid, box)
        queries = make_queries(30, extent=10.0, seed=3)
        for query in queries:
            plain.range_query(query)
            star.range_query(query)
        assert star.counters.node_tests <= plain.counters.node_tests * 1.1
