"""Hilbert packing, bottom-up updates, and the iterated join."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.trajectories import BrownianMotion, PlasticityMotion, apply_moves
from repro.geometry.aabb import AABB
from repro.indexes.hilbert import (
    hilbert_index,
    hilbert_key_for_box,
    hilbert_pack,
    hilbert_sort,
)
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import Node, RTree
from repro.joins.iterated import IteratedSelfJoin
from repro.instrumentation.counters import Counters
from repro.joins.strategies import NestedLoopJoin
from repro.moving.bottom_up import BottomUpRTree

from conftest import (
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)


class TestHilbertIndex:
    def test_2d_visits_every_cell_once(self):
        """A 2-bit 2-d curve is a permutation of the 16 lattice cells."""
        seen = {hilbert_index((x, y), 2) for x in range(4) for y in range(4)}
        assert seen == set(range(16))

    def test_consecutive_indexes_are_lattice_neighbours(self):
        """The defining Hilbert property: the curve never jumps."""
        bits = 3
        by_index = {}
        for x in range(8):
            for y in range(8):
                by_index[hilbert_index((x, y), bits)] = (x, y)
        for h in range(len(by_index) - 1):
            (x1, y1), (x2, y2) = by_index[h], by_index[h + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_3d_permutation(self):
        seen = {
            hilbert_index((x, y, z), 2) for x in range(4) for y in range(4) for z in range(4)
        }
        assert seen == set(range(64))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index((4, 0), 2)

    def test_key_for_box_clamps(self):
        universe = AABB((0, 0, 0), (10, 10, 10))
        outside = AABB((50, 50, 50), (51, 51, 51))
        key = hilbert_key_for_box(outside, universe, bits=4)
        assert key >= 0


class TestHilbertPacking:
    def test_sort_keeps_items(self):
        items = make_items(100, seed=3)
        ordered = hilbert_sort(items)
        assert sorted(eid for eid, _ in ordered) == sorted(eid for eid, _ in items)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 300), capacity=st.integers(2, 24))
    def test_pack_preserves_items(self, n, capacity):
        items = make_items(n, seed=7)
        root, height, count = hilbert_pack(items, capacity, Node)
        ids = []
        stack = [root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= capacity
            if node.is_leaf:
                ids.extend(ref for _, ref in node.entries)
            else:
                stack.extend(child for _, child in node.entries)
        assert sorted(ids) == sorted(eid for eid, _ in items)

    def test_rtree_hilbert_bulk_load_queries(self, items_3d, queries_3d):
        tree = RTree(max_entries=16)
        tree.bulk_load(items_3d, packing="hilbert")
        assert_same_range_results(tree, items_3d, queries_3d)
        tree.check_invariants()

    def test_rtree_rejects_unknown_packing(self, items_3d):
        with pytest.raises(ValueError):
            RTree().bulk_load(items_3d, packing="zorder")

    def test_hilbert_locality_on_clusters(self):
        """Hilbert leaves on clustered data should have small MBRs compared
        to insertion-order chunking."""
        from repro.datasets.points import gaussian_cluster_points

        items = gaussian_cluster_points(600, UNIVERSE_3D, clusters=6, seed=9)
        root, _, _ = hilbert_pack(items, 16, Node)
        hilbert_volumes = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                hilbert_volumes.append(node.mbr().volume())
            else:
                stack.extend(child for _, child in node.entries)
        naive_volumes = []
        for start in range(0, len(items), 16):
            chunk = items[start : start + 16]
            hull = chunk[0][1]
            for _, box in chunk[1:]:
                hull = hull.union(box)
            naive_volumes.append(hull.volume())
        assert np.mean(hilbert_volumes) < np.mean(naive_volumes)


class TestBottomUpRTree:
    def test_oracle_after_motion(self, items_3d, queries_3d):
        index = BottomUpRTree(max_entries=8)
        index.bulk_load(items_3d)
        live = dict(items_3d)
        motion = BrownianMotion(sigma=0.05, universe=UNIVERSE_3D, seed=4)
        for _ in range(3):
            moves = motion.step(live)
            for eid, old, new in moves:
                index.update(eid, old, new)
            apply_moves(live, moves)
        assert_same_range_results(index, list(live.items()), queries_3d)
        index._tree.check_invariants()

    def test_small_motion_is_mostly_in_place(self, items_3d):
        index = BottomUpRTree(max_entries=8)
        index.bulk_load(items_3d)
        live = dict(items_3d)
        motion = PlasticityMotion(universe=UNIVERSE_3D, seed=5)
        for _ in range(3):
            moves = motion.step(live)
            for eid, old, new in moves:
                index.update(eid, old, new)
            apply_moves(live, moves)
        assert index.in_place_updates > index.structural_updates

    def test_large_motion_escapes(self, items_3d):
        index = BottomUpRTree(max_entries=8)
        index.bulk_load(items_3d)
        live = dict(items_3d)
        motion = BrownianMotion(sigma=20.0, universe=UNIVERSE_3D, seed=6)
        moves = motion.step(live)
        for eid, old, new in moves:
            index.update(eid, old, new)
        apply_moves(live, moves)
        assert index.structural_updates > 0
        assert_same_range_results(index, list(live.items()), make_queries(6, seed=7))

    def test_insert_delete(self):
        index = BottomUpRTree()
        box = AABB((1, 1, 1), (2, 2, 2))
        index.insert(1, box)
        assert index.range_query(AABB((0, 0, 0), (3, 3, 3))) == [1]
        index.delete(1, box)
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.delete(1, box)

    def test_knn(self, items_3d):
        index = BottomUpRTree()
        index.bulk_load(items_3d)
        assert_same_knn(index, items_3d, [(20, 80, 40)], k=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BottomUpRTree(refresh_fraction=0.0)


class TestIteratedSelfJoin:
    def _items(self, n=150, seed=8):
        return [(eid, box.expanded(0.2)) for eid, box in make_items(n, seed=seed, max_extent=2.0)]

    @pytest.mark.parametrize("strategy", ["incremental", "recompute"])
    def test_matches_oracle_across_steps(self, strategy):
        items = self._items()
        join = IteratedSelfJoin(items, UNIVERSE_3D, strategy=strategy)
        live = dict(items)
        motion = BrownianMotion(sigma=0.3, universe=UNIVERSE_3D, seed=9)
        for _ in range(4):
            moves = motion.step(live)
            join.step(moves)
            apply_moves(live, moves)
            expected = set(NestedLoopJoin().self_join(list(live.items()), Counters()))
            assert join.pairs == expected
            assert join.pair_count() == len(expected)

    def test_strategies_agree(self):
        items = self._items(seed=10)
        incremental = IteratedSelfJoin(items, UNIVERSE_3D, strategy="incremental")
        recompute = IteratedSelfJoin(items, UNIVERSE_3D, strategy="recompute")
        live = dict(items)
        motion = PlasticityMotion(universe=UNIVERSE_3D, seed=11)
        for _ in range(3):
            moves = motion.step(live)
            incremental.step(moves)
            recompute.step(moves)
            apply_moves(live, moves)
        assert incremental.pairs == recompute.pairs

    def test_partial_motion(self):
        items = self._items(seed=12)
        join = IteratedSelfJoin(items, UNIVERSE_3D)
        live = dict(items)
        motion = BrownianMotion(
            sigma=1.0, universe=UNIVERSE_3D, moving_fraction=0.2, seed=13
        )
        moves = motion.step(live)
        join.step(moves)
        apply_moves(live, moves)
        assert join.pairs == set(NestedLoopJoin().self_join(list(live.items()), Counters()))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            IteratedSelfJoin(self._items(), UNIVERSE_3D, strategy="magic")

    def test_stale_move_rejected(self):
        items = self._items(seed=14)
        join = IteratedSelfJoin(items, UNIVERSE_3D)
        wrong = AABB((0, 0, 0), (1, 1, 1))
        with pytest.raises(KeyError):
            join.step([(items[0][0], wrong, wrong)])
