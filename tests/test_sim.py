"""Simulation engine, models and monitors."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveSimulationIndex
from repro.core.amortization import MaintenanceCosts
from repro.core.uniform_grid import UniformGrid
from repro.datasets.neuroscience import generate_neurons
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree
from repro.sim.engine import TimeSteppedSimulation
from repro.sim.growth import GrowthModel
from repro.sim.material import MaterialModel
from repro.sim.monitors import DensityMonitor, RangeMonitor, VisualizationMonitor
from repro.sim.nbody import BarnesHutTree, NBodyModel, direct_forces
from repro.sim.plasticity import PlasticityModel

from conftest import UNIVERSE_3D, make_items


@pytest.fixture
def neuron_dataset():
    return generate_neurons(neurons=10, segments_per_neuron=20, seed=1)


def _plasticity_sim(dataset, index, maintenance, monitors=()):
    model = PlasticityModel(
        dict(dataset.items), dataset.universe, neighbourhood_queries=4, seed=2
    )
    return TimeSteppedSimulation(model, index, monitors=monitors, maintenance=maintenance)


class TestEngine:
    @pytest.mark.parametrize("maintenance", ["update", "rebuild"])
    def test_index_stays_consistent(self, neuron_dataset, maintenance):
        index = UniformGrid(universe=neuron_dataset.universe)
        sim = _plasticity_sim(neuron_dataset, index, maintenance)
        sim.run(4)
        oracle = LinearScan()
        oracle.bulk_load(list(sim.state.items()))
        query = AABB.from_center(neuron_dataset.universe.center(), 2.0)
        assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))

    def test_reports_phases(self, neuron_dataset):
        index = UniformGrid(universe=neuron_dataset.universe)
        monitor = RangeMonitor(neuron_dataset.universe, queries_per_step=5, seed=3)
        sim = _plasticity_sim(neuron_dataset, index, "update", monitors=[monitor])
        reports = sim.run(3)
        assert len(reports) == 3
        for report in reports:
            assert report.moves == len(neuron_dataset.items)
            assert report.strategy == "update"
            assert report.total_seconds >= 0
            assert report.counters.updates == report.moves

    def test_adaptive_requires_adaptive_index(self, neuron_dataset):
        model = PlasticityModel(dict(neuron_dataset.items), neuron_dataset.universe)
        with pytest.raises(ValueError):
            TimeSteppedSimulation(model, UniformGrid(), maintenance="adaptive")

    def test_unknown_maintenance(self, neuron_dataset):
        model = PlasticityModel(dict(neuron_dataset.items), neuron_dataset.universe)
        with pytest.raises(ValueError):
            TimeSteppedSimulation(model, UniformGrid(), maintenance="yolo")

    def test_adaptive_records_strategy(self, neuron_dataset):
        costs = MaintenanceCosts(
            update_per_element=1e-6,
            rebuild_fixed=1e-3,
            query_indexed=1e-5,
            query_scan=1e-3,
            n_elements=len(neuron_dataset.items),
        )
        index = AdaptiveSimulationIndex(neuron_dataset.universe, costs=costs)
        monitor = RangeMonitor(neuron_dataset.universe, queries_per_step=20, seed=4)
        sim = _plasticity_sim(neuron_dataset, index, "adaptive", monitors=[monitor])
        reports = sim.run(3)
        assert all(r.strategy in ("update", "rebuild", "scan") for r in reports)

    def test_rebuild_vs_update_same_results(self, neuron_dataset):
        grid_a = UniformGrid(universe=neuron_dataset.universe)
        grid_b = UniformGrid(universe=neuron_dataset.universe)
        sim_a = _plasticity_sim(neuron_dataset, grid_a, "update")
        sim_b = _plasticity_sim(neuron_dataset, grid_b, "rebuild")
        sim_a.run(3)
        sim_b.run(3)
        # Identical seeds -> identical physics -> identical final state.
        query = AABB.from_center(neuron_dataset.universe.center(), 3.0)
        assert sorted(grid_a.range_query(query)) == sorted(grid_b.range_query(query))


class TestPlasticityModel:
    def test_density_queries_recorded(self, neuron_dataset):
        index = UniformGrid(universe=neuron_dataset.universe)
        sim = _plasticity_sim(neuron_dataset, index, "update")
        sim.run(2)
        assert len(sim.model.density_samples) == 8  # 4 per step

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            PlasticityModel({}, UNIVERSE_3D)


class TestNBody:
    def test_barnes_hut_approximates_direct(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(2, 8, (80, 3))
        masses = rng.uniform(0.5, 2.0, 80)
        tree = BarnesHutTree(positions, masses, theta=0.3)
        approx = np.stack([tree.acceleration_on(i) for i in range(80)])
        exact = direct_forces(positions, masses)
        error = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert error < 0.03

    def test_smaller_theta_is_more_accurate(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(0, 10, (60, 3))
        masses = rng.uniform(0.5, 2.0, 60)
        exact = direct_forces(positions, masses)

        def error(theta):
            tree = BarnesHutTree(positions, masses, theta=theta)
            approx = np.stack([tree.acceleration_on(i) for i in range(60)])
            return np.linalg.norm(approx - exact) / np.linalg.norm(exact)

        assert error(0.2) <= error(1.2)

    def test_energy_stays_bounded(self):
        rng = np.random.default_rng(7)
        universe = AABB((0, 0, 0), (10, 10, 10))
        model = NBodyModel(
            positions=rng.uniform(3, 7, (40, 3)),
            velocities=np.zeros((40, 3)),
            masses=rng.uniform(0.5, 1.5, 40),
            universe=universe,
            dt=0.005,
        )
        sim = TimeSteppedSimulation(model, UniformGrid(universe=universe), maintenance="rebuild")
        sim.run(5)
        assert model.kinetic_energy() < 1e4  # no numerical blow-up

    def test_coincident_bodies_handled(self):
        positions = np.zeros((5, 3)) + 1.0
        masses = np.ones(5)
        tree = BarnesHutTree(positions, masses)
        acc = tree.acceleration_on(0)
        assert np.all(np.isfinite(acc))

    def test_validation(self):
        with pytest.raises(ValueError):
            BarnesHutTree(np.zeros((2, 3)), np.ones(3))
        with pytest.raises(ValueError):
            NBodyModel(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(2), UNIVERSE_3D, method="magic")


class TestMaterial:
    def test_specimen_stretches_under_pull(self):
        points = np.array(
            [[x, y, z] for x in range(8) for y in range(3) for z in range(3)], dtype=float
        )
        universe = AABB((-2, -2, -2), (15, 6, 6))
        model = MaterialModel(points, universe, neighbours=5, pull=1.0)
        initial = points[:, 0].max() - points[:, 0].min()
        sim = TimeSteppedSimulation(model, UniformGrid(universe=universe), maintenance="update")
        sim.run(20)
        assert model.elongation() > initial

    def test_bonds_built_from_knn(self):
        points = np.array([[float(i), 0.0, 0.0] for i in range(10)])
        universe = AABB((-1, -1, -1), (11, 1, 1))
        model = MaterialModel(points, universe, neighbours=2)
        sim = TimeSteppedSimulation(model, UniformGrid(universe=universe), maintenance="update")
        sim.run(1)
        assert len(model.bonds) >= 9  # at least a chain

    def test_fixed_vertices_do_not_move(self):
        points = np.array(
            [[x, y, 0.0] for x in range(6) for y in range(2)], dtype=float
        )
        universe = AABB((-2, -2, -1), (10, 4, 1))
        model = MaterialModel(points, universe, neighbours=3, pull=2.0)
        fixed_before = model.positions[model.fixed].copy()
        sim = TimeSteppedSimulation(model, UniformGrid(universe=universe), maintenance="update")
        sim.run(10)
        assert np.allclose(model.positions[model.fixed], fixed_before)


class TestGrowth:
    def test_growth_inserts_segments(self, neuron_dataset):
        model = GrowthModel(neuron_dataset, join_every=0, seed=8)
        index = UniformGrid(universe=neuron_dataset.universe)
        initial = len(neuron_dataset.capsules)
        sim = TimeSteppedSimulation(model, index, maintenance="update")
        sim.run(4)
        assert len(neuron_dataset.capsules) > initial
        assert len(index) == len(neuron_dataset.capsules)

    def test_synapse_detection_runs(self, neuron_dataset):
        model = GrowthModel(neuron_dataset, join_every=2, epsilon=0.3, seed=9)
        index = UniformGrid(universe=neuron_dataset.universe)
        sim = TimeSteppedSimulation(model, index, maintenance="update")
        sim.run(4)
        assert len(model.synapse_counts) == 2


class TestMonitors:
    def test_range_monitor_counts(self, neuron_dataset):
        index = UniformGrid(universe=neuron_dataset.universe)
        index.bulk_load(neuron_dataset.items)
        monitor = RangeMonitor(neuron_dataset.universe, queries_per_step=7, seed=10)
        monitor.observe(index, 0)
        assert len(monitor.result_counts) == 7
        assert monitor.expected_queries() == 7

    def test_density_monitor_history(self, neuron_dataset):
        index = UniformGrid(universe=neuron_dataset.universe)
        index.bulk_load(neuron_dataset.items)
        regions = [AABB.from_center(neuron_dataset.universe.center(), 2.0)]
        monitor = DensityMonitor(regions)
        monitor.observe(index, 0)
        monitor.observe(index, 1)
        assert len(monitor.history) == 2

    def test_visualization_monitor_frames(self, neuron_dataset):
        index = UniformGrid(universe=neuron_dataset.universe)
        index.bulk_load(neuron_dataset.items)
        monitor = VisualizationMonitor(neuron_dataset.universe, resolution=3)
        monitor.observe(index, 0)
        frame = monitor.frames[0]
        assert frame.shape == (3, 3, 3)
        assert frame.sum() >= len(neuron_dataset.items)  # replication counts

    def test_monitor_validation(self):
        with pytest.raises(ValueError):
            DensityMonitor([])
        with pytest.raises(ValueError):
            VisualizationMonitor(UNIVERSE_3D, resolution=0)
