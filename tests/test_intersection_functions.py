"""Functional intersection predicates (the hot-loop forms)."""

from hypothesis import given, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.intersection import (
    box_contains_box,
    box_contains_point,
    boxes_intersect,
    capsules_intersect,
    capsules_within,
)
from repro.geometry.primitives import Capsule

coordinate = st.floats(-50, 50, allow_nan=False)


def _box(values):
    lo = [min(a, b) for a, b in values]
    hi = [max(a, b) for a, b in values]
    return AABB(lo, hi)


boxes3 = st.lists(st.tuples(coordinate, coordinate), min_size=3, max_size=3).map(_box)
points3 = st.tuples(coordinate, coordinate, coordinate)


class TestFunctionalFormsAgreeWithMethods:
    @given(boxes3, boxes3)
    def test_boxes_intersect(self, a, b):
        assert boxes_intersect(a, b) == a.intersects(b)

    @given(boxes3, points3)
    def test_box_contains_point(self, box, point):
        assert box_contains_point(box, point) == box.contains_point(point)

    @given(boxes3, boxes3)
    def test_box_contains_box(self, outer, inner):
        assert box_contains_box(outer, inner) == outer.contains_box(inner)

    @given(boxes3, boxes3)
    def test_containment_implies_intersection(self, outer, inner):
        if box_contains_box(outer, inner):
            assert boxes_intersect(outer, inner)


class TestCapsulePredicates:
    def test_intersect_matches_distance_sign(self):
        a = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        touching = Capsule((0, 2, 0), (10, 2, 0), 1.0)
        apart = Capsule((0, 5, 0), (10, 5, 0), 1.0)
        assert capsules_intersect(a, touching)
        assert not capsules_intersect(a, apart)

    @given(points3, points3, points3, points3, st.floats(0.01, 3.0))
    def test_within_zero_equals_intersect(self, p1, q1, p2, q2, radius):
        a = Capsule(p1, q1, radius)
        b = Capsule(p2, q2, radius)
        assert capsules_within(a, b, 0.0) == capsules_intersect(a, b)

    @given(points3, points3, points3, points3)
    def test_within_is_monotone_in_epsilon(self, p1, q1, p2, q2):
        a = Capsule(p1, q1, 0.5)
        b = Capsule(p2, q2, 0.5)
        if capsules_within(a, b, 1.0):
            assert capsules_within(a, b, 2.0)
