"""Primitives and exact distance predicates."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.distance import (
    point_box_distance,
    point_point_distance,
    point_segment_distance,
    segment_segment_distance,
)
from repro.geometry.intersection import capsules_within, sphere_intersects_box
from repro.geometry.primitives import Capsule, Point, Segment, Sphere

coords = st.tuples(*[st.floats(-50, 50, allow_nan=False) for _ in range(3)])


class TestPoint:
    def test_bounds_degenerate(self):
        assert Point((1, 2, 3)).bounds().is_degenerate()

    def test_distance(self):
        assert Point((0, 0, 0)).distance_to(Point((3, 4, 0))) == pytest.approx(5.0)

    def test_value_semantics(self):
        assert Point((1, 2, 3)) == Point((1, 2, 3))
        assert hash(Point((1, 2, 3))) == hash(Point((1, 2, 3)))


class TestSphere:
    def test_bounds(self):
        assert Sphere((0, 0, 0), 2.0).bounds() == AABB((-2, -2, -2), (2, 2, 2))

    def test_contains(self):
        sphere = Sphere((0, 0, 0), 1.0)
        assert sphere.contains_point((1, 0, 0))
        assert not sphere.contains_point((1.01, 0, 0))

    def test_sphere_sphere(self):
        assert Sphere((0, 0, 0), 1).intersects_sphere(Sphere((2, 0, 0), 1))
        assert not Sphere((0, 0, 0), 1).intersects_sphere(Sphere((2.1, 0, 0), 1))

    def test_sphere_box(self):
        assert sphere_intersects_box(Sphere((3, 0, 0), 2.001), AABB((0, -1, -1), (1, 1, 1)))
        assert not sphere_intersects_box(Sphere((3, 0, 0), 1.9), AABB((0, -1, -1), (1, 1, 1)))

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            Sphere((0, 0, 0), -1)


class TestSegment:
    def test_length_midpoint(self):
        seg = Segment((0, 0, 0), (3, 4, 0))
        assert seg.length() == pytest.approx(5.0)
        assert seg.midpoint() == (1.5, 2.0, 0.0)

    def test_bounds_orders_corners(self):
        seg = Segment((3, 0, 5), (1, 4, 2))
        assert seg.bounds() == AABB((1, 0, 2), (3, 4, 5))

    def test_point_distance_interior(self):
        seg = Segment((0, 0, 0), (10, 0, 0))
        assert seg.distance_to_point((5, 3, 0)) == pytest.approx(3.0)

    def test_point_distance_clamped(self):
        seg = Segment((0, 0, 0), (10, 0, 0))
        assert seg.distance_to_point((-3, 4, 0)) == pytest.approx(5.0)


class TestSegmentSegmentDistance:
    def test_crossing(self):
        d = segment_segment_distance((0, 0, 0), (2, 0, 0), (1, -1, 0), (1, 1, 0))
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_skew(self):
        d = segment_segment_distance((0, 0, 0), (1, 0, 0), (0, 1, 1), (1, 1, 1))
        assert d == pytest.approx(math.sqrt(2.0))

    def test_parallel(self):
        d = segment_segment_distance((0, 0, 0), (5, 0, 0), (0, 2, 0), (5, 2, 0))
        assert d == pytest.approx(2.0)

    def test_collinear_disjoint(self):
        d = segment_segment_distance((0, 0, 0), (1, 0, 0), (3, 0, 0), (4, 0, 0))
        assert d == pytest.approx(2.0)

    def test_degenerate_both_points(self):
        d = segment_segment_distance((0, 0, 0), (0, 0, 0), (3, 4, 0), (3, 4, 0))
        assert d == pytest.approx(5.0)

    def test_degenerate_one_point(self):
        d = segment_segment_distance((0, 0, 0), (0, 0, 0), (-5, 3, 0), (5, 3, 0))
        assert d == pytest.approx(3.0)

    @given(coords, coords, coords, coords)
    def test_symmetric(self, p1, q1, p2, q2):
        forward = segment_segment_distance(p1, q1, p2, q2)
        backward = segment_segment_distance(p2, q2, p1, q1)
        assert forward == pytest.approx(backward, abs=1e-6)

    @given(coords, coords, coords, coords)
    def test_lower_bounds_sampled(self, p1, q1, p2, q2):
        """Closed form must never exceed any sampled pairwise distance."""
        exact = segment_segment_distance(p1, q1, p2, q2)
        ts = np.linspace(0.0, 1.0, 9)
        a = np.asarray(p1)
        b = np.asarray(q1)
        c = np.asarray(p2)
        d = np.asarray(q2)
        sampled = min(
            float(np.linalg.norm((a + t * (b - a)) - (c + s * (d - c))))
            for t in ts
            for s in ts
        )
        assert exact <= sampled + 1e-6


class TestCapsule:
    def test_bounds_includes_radius(self):
        cap = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        assert cap.bounds() == AABB((-1, -1, -1), (11, 1, 1))

    def test_contains_point(self):
        cap = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        assert cap.contains_point((5, 0.99, 0))
        assert not cap.contains_point((5, 1.01, 0))
        assert cap.contains_point((-0.5, 0, 0))  # inside the cap

    def test_volume(self):
        cap = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        expected = math.pi * 10 + 4.0 / 3.0 * math.pi
        assert cap.volume() == pytest.approx(expected)

    def test_distance_and_intersection(self):
        a = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        b = Capsule((0, 3, 0), (10, 3, 0), 1.0)
        assert a.distance_to(b) == pytest.approx(1.0)
        assert not a.intersects(b)
        c = Capsule((0, 1.5, 0), (10, 1.5, 0), 1.0)
        assert a.intersects(c)

    def test_within_predicate(self):
        a = Capsule((0, 0, 0), (10, 0, 0), 1.0)
        b = Capsule((0, 3, 0), (10, 3, 0), 1.0)
        assert capsules_within(a, b, 1.0)
        assert not capsules_within(a, b, 0.99)


class TestPointBoxDistance:
    @given(coords)
    def test_matches_aabb_method(self, point):
        box = AABB((-5, -5, -5), (5, 5, 5))
        assert point_box_distance(point, box.lo, box.hi) == pytest.approx(
            box.min_distance_to_point(point)
        )

    @given(coords, coords)
    def test_point_point_nonnegative_symmetric(self, p, q):
        assert point_point_distance(p, q) >= 0
        assert point_point_distance(p, q) == pytest.approx(point_point_distance(q, p))

    @given(coords, coords, coords)
    def test_point_segment_bounded_by_endpoints(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= point_point_distance(p, a) + 1e-9
        assert d <= point_point_distance(p, b) + 1e-9
