"""Oracle-driven property tests for the batch query layer.

Every index's ``batch_range_query`` / ``batch_knn`` must agree item-for-item
with the :class:`~repro.indexes.linear_scan.LinearScan` oracle — including
empty batches, duplicate queries and degenerate (zero-extent) boxes.  The
hypothesis suites drive the comparison with generated datasets and batches;
the deterministic tests pin engine behaviour (dedup, point queries, input
forms) and the UniformGrid cell-visit regression.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import UNIVERSE_3D, knn_pairs, make_items, make_queries
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.engine import BatchQueryEngine
from repro.geometry.aabb import AABB, boxes_to_array
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import RTree
from repro.instrumentation.counters import Counters

INDEX_FACTORIES = {
    "linear_scan": LinearScan,
    "uniform_grid": UniformGrid,
    "multires_grid": lambda: MultiResolutionGrid(levels=3),
    "rtree": lambda: RTree(max_entries=8),
    "rstar": lambda: RStarTree(max_entries=8),
    "disk_rtree": lambda: DiskRTree(max_entries=8),
}

FACTORY_PARAMS = pytest.mark.parametrize(
    "factory", INDEX_FACTORIES.values(), ids=INDEX_FACTORIES.keys()
)

# float32-representable coordinates keep kNN distances clear of the batch
# kernels' squared-gap underflow (subnormal gaps square to 0.0 where scalar
# math.hypot resolves them; see aabb.batch_min_distance_to_points) — exact
# ordered (distance, id) comparisons would otherwise flake on ties that
# exist only on one side.
coordinate = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def random_boxes(draw, dims: int, max_count: int, allow_degenerate: bool = True):
    """A list of boxes; roughly a third are degenerate when allowed."""
    count = draw(st.integers(0, max_count))
    boxes = []
    for _ in range(count):
        a = [draw(coordinate) for _ in range(dims)]
        if allow_degenerate and draw(st.booleans()) and draw(st.booleans()):
            boxes.append(AABB(a, a))
            continue
        b = [draw(coordinate) for _ in range(dims)]
        lo = [min(x, y) for x, y in zip(a, b)]
        hi = [max(x, y) for x, y in zip(a, b)]
        boxes.append(AABB(lo, hi))
    return boxes


@st.composite
def dataset_and_queries(draw, dims: int):
    items = [(eid, box) for eid, box in enumerate(draw(random_boxes(dims, 40)))]
    queries = draw(random_boxes(dims, 8))
    # Force duplicates into most non-empty batches.
    if queries and draw(st.booleans()):
        queries = queries + [queries[0]]
    return items, queries


class TestBatchRangeMatchesOracle:
    @FACTORY_PARAMS
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), dims=st.sampled_from([2, 3]))
    def test_matches_linear_scan(self, factory, data, dims):
        items, queries = data.draw(dataset_and_queries(dims))
        index = factory()
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        got = index.batch_range_query(queries)
        assert len(got) == len(queries)
        for answer, query in zip(got, queries):
            assert sorted(answer) == sorted(oracle.range_query(query))

    @FACTORY_PARAMS
    def test_empty_batch(self, factory):
        index = factory()
        index.bulk_load(make_items(50, seed=2))
        assert index.batch_range_query([]) == []
        assert index.batch_range_query(np.empty((0, 2, 3))) == []

    @FACTORY_PARAMS
    def test_empty_index(self, factory):
        index = factory()
        index.bulk_load([])
        queries = make_queries(4, seed=3)
        assert index.batch_range_query(queries) == [[], [], [], []]

    @FACTORY_PARAMS
    def test_ndarray_and_aabb_inputs_agree(self, factory):
        items = make_items(300, seed=5)
        queries = make_queries(10, seed=6) + [AABB.from_point((50.0, 50.0, 50.0))]
        index = factory()
        index.bulk_load(items)
        from_objects = index.batch_range_query(queries)
        from_array = index.batch_range_query(boxes_to_array(queries))
        assert [sorted(r) for r in from_objects] == [sorted(r) for r in from_array]

    @FACTORY_PARAMS
    def test_extreme_query_coordinates(self, factory):
        """Queries far outside the universe must clamp, not overflow.

        Regression: the grid kernel's float->int64 cell cast wrapped for
        coordinates ~1e30 and silently dropped hits.
        """
        items = make_items(60, seed=17)
        index = factory()
        index.bulk_load(items)
        huge = AABB((-1e30,) * 3, (1e30,) * 3)
        assert sorted(index.batch_range_query([huge])[0]) == sorted(
            eid for eid, _ in items
        )

    @FACTORY_PARAMS
    def test_batch_after_mutations(self, factory):
        """Mutations must invalidate any cached batch state."""
        items = make_items(200, seed=8)
        index = factory()
        index.bulk_load(items)
        queries = make_queries(6, seed=9)
        index.batch_range_query(queries)  # warm any lazy cache
        index.delete(*items[0])
        index.insert(10_000, AABB((1.0, 1.0, 1.0), (3.0, 3.0, 3.0)))
        oracle = LinearScan()
        oracle.bulk_load(items[1:] + [(10_000, AABB((1.0, 1.0, 1.0), (3.0, 3.0, 3.0)))])
        for answer, query in zip(index.batch_range_query(queries), queries):
            assert sorted(answer) == sorted(oracle.range_query(query))


class TestBatchKnnMatchesOracle:
    @FACTORY_PARAMS
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), dims=st.sampled_from([2, 3]), k=st.integers(0, 6))
    def test_matches_linear_scan(self, factory, data, dims, k):
        items, _ = data.draw(dataset_and_queries(dims))
        points = [tuple(box.center()) for box in data.draw(random_boxes(dims, 5))]
        if points and data.draw(st.booleans()):
            points = points + [points[0]]
        index = factory()
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        got = index.batch_knn(points, k)
        assert len(got) == len(points)
        for answer, point in zip(got, points):
            # Exact ordered comparison: the (distance, id) tie-break contract
            # (indexes/base.py) leaves nothing to sort.
            assert knn_pairs(answer) == knn_pairs(oracle.knn(point, k))

    @FACTORY_PARAMS
    def test_empty_batch(self, factory):
        index = factory()
        index.bulk_load(make_items(30, seed=4))
        assert index.batch_knn([], 3) == []


class TestBatchQueryEngine:
    def _setup(self, n=400):
        items = make_items(n, seed=11)
        index = UniformGrid()
        index.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        return index, oracle

    def test_range_dedup_fans_results_back_out(self):
        index, oracle = self._setup()
        query = make_queries(1, seed=12)[0]
        engine = BatchQueryEngine.kernel(index)
        results = engine.range_query([query] * 7)
        assert engine.stats.deduplicated == 6
        assert engine.stats.queries == 7
        expected = sorted(oracle.range_query(query))
        assert all(sorted(r) == expected for r in results)
        # Fanned-out lists must be independent copies.
        results[0].append(-1)
        assert results[1] != results[0]

    def test_dedup_disabled(self):
        index, _ = self._setup()
        engine = BatchQueryEngine.kernel(index, dedup=False)
        engine.range_query(make_queries(3, seed=13) * 2)
        assert engine.stats.deduplicated == 0
        assert engine.stats.queries == 6

    def test_point_query_is_containment(self):
        index, oracle = self._setup()
        points = np.array([[50.0, 50.0, 50.0], [1.0, 2.0, 3.0], [99.0, 99.0, 99.0]])
        got = BatchQueryEngine.kernel(index).point_query(points)
        for answer, point in zip(got, points):
            assert sorted(answer) == sorted(oracle.range_query(AABB.from_point(point)))

    def test_knn_matches_oracle(self):
        index, oracle = self._setup()
        points = np.array([[10.0, 20.0, 30.0], [10.0, 20.0, 30.0], [80.0, 10.0, 40.0]])
        got = BatchQueryEngine.kernel(index).knn(points, 5)
        for answer, point in zip(got, points):
            assert knn_pairs(answer) == knn_pairs(oracle.knn(tuple(point), 5))

    def test_empty_batches(self):
        index, _ = self._setup(50)
        engine = BatchQueryEngine.kernel(index)
        assert engine.range_query([]) == []
        assert engine.knn([], 4) == []
        assert engine.point_query([]) == []


class TestUniformGridBatchCellRegression:
    def test_batch_visits_no_more_cells_than_per_query_sum(self):
        """Pin the batching win the engine exists for: the vectorized pass
        resolves each distinct cell once, so it can never probe more cells
        than the per-query loop's sum (and probes strictly fewer when
        queries repeat or overlap)."""
        counters = Counters()
        grid = UniformGrid(counters=counters)
        grid.bulk_load(make_items(600, seed=21))
        queries = make_queries(30, seed=22)
        queries = queries + queries[:10]  # repeats make the bound strict

        before = counters.snapshot()
        for query in queries:
            grid.range_query(query)
        per_query_cells = counters.diff(before).cells_probed

        before = counters.snapshot()
        batched = grid.batch_range_query(queries)
        batch_cells = counters.diff(before).cells_probed

        assert 0 < batch_cells <= per_query_cells
        oracle = LinearScan()
        oracle.bulk_load(make_items(600, seed=21))
        for answer, query in zip(batched, queries):
            assert sorted(answer) == sorted(oracle.range_query(query))
