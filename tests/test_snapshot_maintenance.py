"""Regression tests for incremental `_GridSnapshot` maintenance.

PR 1's batch kernels packed the UniformGrid into a dense snapshot but threw
it away on *any* mutation, so the first batch after a simulation step repaid
the full packing cost.  These tests pin the incremental behaviour that
replaced it: mutations patch the snapshot (alive mask, cell-keyed overlay,
in-place box rewrites), ``snapshot_rebuilds`` counts full packs, and a
patched snapshot must answer every batch query identically to a
from-scratch rebuild.
"""

from __future__ import annotations

import numpy as np

from conftest import knn_pairs, make_items, make_queries
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.geometry.aabb import AABB, boxes_to_array
from repro.indexes.linear_scan import LinearScan


def shifted(box: AABB, delta: float) -> AABB:
    return AABB([c + delta for c in box.lo], [c + delta for c in box.hi])


def assert_matches_fresh_rebuild(grid: UniformGrid, queries, points, k=5):
    """Patched-snapshot answers == a from-scratch grid's == the oracle's."""
    fresh = UniformGrid(universe=grid.universe, cell_size=grid.cell_size)
    fresh.bulk_load(list(grid._boxes.items()))
    oracle = LinearScan()
    oracle.bulk_load(list(grid._boxes.items()))
    got_range = grid.batch_range_query(queries)
    assert [sorted(r) for r in got_range] == [
        sorted(r) for r in fresh.batch_range_query(queries)
    ]
    for answer, query in zip(got_range, queries):
        assert sorted(answer) == sorted(oracle.range_query(query))
    got_knn = grid.batch_knn(points, k)
    assert [knn_pairs(r) for r in got_knn] == [
        knn_pairs(r) for r in fresh.batch_knn(points, k)
    ]
    for answer, point in zip(got_knn, points):
        assert knn_pairs(answer) == knn_pairs(oracle.knn(tuple(point), k))


class TestRebuildCounter:
    def test_insert_batch_remove_batch_rebuilds_at_most_once(self):
        """The ISSUE's acceptance sequence: one pack total, not one per step."""
        items = make_items(300, seed=1)
        grid = UniformGrid()
        grid.bulk_load(items)
        queries = make_queries(8, seed=2)
        assert grid.snapshot_rebuilds == 0

        grid.insert(9_000, AABB((5.0, 5.0, 5.0), (6.0, 6.0, 6.0)))
        grid.batch_range_query(queries)
        grid.delete(*items[10])
        grid.batch_range_query(queries)
        assert grid.snapshot_rebuilds <= 1

    def test_mutation_burst_between_batches_keeps_snapshot(self):
        items = make_items(400, seed=3)
        grid = UniformGrid()
        grid.bulk_load(items)
        queries = make_queries(6, seed=4)
        points = np.array([[20.0, 30.0, 40.0], [75.0, 15.0, 60.0]])
        grid.batch_range_query(queries)
        assert grid.snapshot_rebuilds == 1
        for step in range(5):
            eid, box = items[step]
            grid.update(eid, box, shifted(box, 0.25))
            items[step] = (eid, shifted(box, 0.25))
            grid.batch_range_query(queries)
            grid.batch_knn(points, 4)
        assert grid.snapshot_rebuilds == 1  # every batch reused the patched pack

    def test_deferred_compaction_repacks_once_overlay_outgrows_base(self):
        items = make_items(200, seed=5)
        grid = UniformGrid()
        grid.bulk_load(items)
        grid.batch_range_query(make_queries(2, seed=6))
        assert grid.snapshot_rebuilds == 1
        # Threshold is max(64, n // 4) patches; 80 inserts must cross it.
        for i in range(80):
            grid.insert(50_000 + i, AABB((1.0 + i * 0.1,) * 3, (1.5 + i * 0.1,) * 3))
        grid.batch_range_query(make_queries(2, seed=6))
        assert grid.snapshot_rebuilds == 2


class TestPatchedSnapshotCorrectness:
    def test_inserts_are_visible_through_the_patched_snapshot(self):
        items = make_items(250, seed=7)
        grid = UniformGrid()
        grid.bulk_load(items)
        queries = make_queries(10, seed=8)
        points = np.array([[10.0, 10.0, 10.0], [55.0, 44.0, 33.0]])
        grid.batch_range_query(queries)  # build the snapshot
        rebuilds = grid.snapshot_rebuilds
        for i in range(10):
            grid.insert(20_000 + i, AABB((9.0 + i,) * 3, (10.0 + i,) * 3))
        assert_matches_fresh_rebuild(grid, queries, points)
        assert grid.snapshot_rebuilds == rebuilds

    def test_removes_updates_and_reinserts(self):
        items = make_items(250, seed=9)
        grid = UniformGrid()
        grid.bulk_load(items)
        queries = make_queries(10, seed=10)
        points = np.array([[30.0, 60.0, 20.0], [80.0, 80.0, 80.0]])
        grid.batch_range_query(queries)
        rebuilds = grid.snapshot_rebuilds

        # Remove a handful, move some in place, relocate some across cells,
        # and re-insert a removed id elsewhere — every patch kind at once.
        for eid, box in items[:5]:
            grid.delete(eid, box)
        for eid, box in items[5:10]:
            grid.update(eid, box, shifted(box, 0.01))  # same-cell rewrite
        for eid, box in items[10:15]:
            grid.update(eid, box, shifted(box, 30.0))  # cell switch
        grid.insert(items[0][0], AABB((2.0, 2.0, 2.0), (2.5, 2.5, 2.5)))

        assert_matches_fresh_rebuild(grid, queries, points)
        assert grid.snapshot_rebuilds == rebuilds

    def test_patched_equals_rebuilt_after_knn_only_traffic(self):
        items = make_items(300, seed=11)
        grid = UniformGrid()
        grid.bulk_load(items)
        points = np.array([[25.0, 25.0, 25.0], [5.0, 95.0, 45.0], [60.0, 60.0, 60.0]])
        grid.batch_knn(points, 6)  # snapshot built by the kNN kernel
        assert grid.snapshot_rebuilds == 1
        grid.delete(*items[42])
        grid.insert(31_000, AABB((24.0, 24.0, 24.0), (26.0, 26.0, 26.0)))
        assert_matches_fresh_rebuild(grid, make_queries(5, seed=12), points, k=6)
        assert grid.snapshot_rebuilds == 1

    def test_overlay_entries_replicate_across_cells(self):
        """A patched-in element spanning many cells is found from each."""
        grid = UniformGrid(universe=AABB((0.0, 0.0), (100.0, 100.0)), cell_size=5.0)
        grid.bulk_load(make_items(80, universe=AABB((0.0, 0.0), (100.0, 100.0)), seed=13))
        grid.batch_range_query(boxes_to_array([AABB((0.0, 0.0), (100.0, 100.0))]))
        big = AABB((10.0, 10.0), (40.0, 40.0))  # spans dozens of cells
        grid.insert(70_000, big)
        probes = boxes_to_array(
            [AABB((11.0, 11.0), (12.0, 12.0)), AABB((38.0, 38.0), (39.0, 39.0))]
        )
        for hits in grid.batch_range_query(probes):
            assert 70_000 in hits
        # ... and exactly once per query despite the multi-cell replication.
        assert all(hits.count(70_000) == 1 for hits in grid.batch_range_query(probes))
        assert grid.snapshot_rebuilds == 1


def _two_level_dataset(n=160, seed=17):
    """Half small elements (finest level), half large (coarser level)."""
    rng = np.random.default_rng(seed)
    items = []
    for eid in range(n):
        lo = rng.uniform(0.0, 60.0, 3)
        extent = rng.uniform(0.2, 0.6) if eid % 2 == 0 else rng.uniform(18.0, 28.0)
        items.append((eid, AABB(lo, np.minimum(lo + extent, 100.0))))
    return items


class TestMultiResolutionLevelMigration:
    """ISSUE 3 satellite: level migration patches only the source and
    destination level snapshots — the other levels' packs stay warm."""

    def _loaded_grid(self):
        grid = MultiResolutionGrid(
            universe=AABB((0.0,) * 3, (100.0,) * 3), levels=3
        )
        items = _two_level_dataset()
        grid.bulk_load(items)
        return grid, dict(items)

    def test_migration_does_not_repack_any_level(self):
        grid, boxes = self._loaded_grid()
        queries = make_queries(6, seed=18)
        grid.batch_range_query(queries)  # pack every populated level once
        packed = grid.level_snapshot_rebuilds()
        assert grid.snapshot_rebuilds == sum(packed) > 0

        # Grow a small element until it must migrate to a coarser level,
        # and shrink a large one down to the finest level.
        grow_id = 0
        new_big = AABB(boxes[grow_id].lo, tuple(c + 20.0 for c in boxes[grow_id].lo))
        grid.update(grow_id, boxes[grow_id], new_big)
        boxes[grow_id] = new_big
        shrink_id = 1
        new_small = AABB(boxes[shrink_id].lo, tuple(c + 0.3 for c in boxes[shrink_id].lo))
        grid.update(shrink_id, boxes[shrink_id], new_small)
        boxes[shrink_id] = new_small
        assert grid.level_migrations == 2

        grid.batch_range_query(queries)
        grid.batch_knn(np.asarray([[10.0, 10.0, 10.0], [50.0, 50.0, 50.0]]), 5)
        assert grid.level_snapshot_rebuilds() == packed  # zero new packs

    def test_migrated_answers_match_oracle_through_patched_snapshots(self):
        grid, boxes = self._loaded_grid()
        queries = make_queries(8, seed=19)
        points = np.asarray([[15.0, 15.0, 15.0], [70.0, 40.0, 20.0], [1.0, 1.0, 1.0]])
        grid.batch_range_query(queries)
        packed = grid.snapshot_rebuilds

        # A burst of migrations in both directions plus same-level moves.
        for eid in range(0, 12, 2):  # grow small → coarse
            new_box = AABB(boxes[eid].lo, tuple(c + 22.0 for c in boxes[eid].lo))
            grid.update(eid, boxes[eid], new_box)
            boxes[eid] = new_box
        for eid in range(1, 12, 2):  # shrink large → fine
            new_box = AABB(boxes[eid].lo, tuple(c + 0.4 for c in boxes[eid].lo))
            grid.update(eid, boxes[eid], new_box)
            boxes[eid] = new_box
        for eid in range(20, 24):  # same-level drift
            new_box = shifted(boxes[eid], 0.05)
            grid.update(eid, boxes[eid], new_box)
            boxes[eid] = new_box
        assert grid.level_migrations == 12

        oracle = LinearScan()
        oracle.bulk_load(list(boxes.items()))
        got_range = grid.batch_range_query(queries)
        for answer, query in zip(got_range, queries):
            assert sorted(answer) == sorted(oracle.range_query(query))
        got_knn = grid.batch_knn(points, 6)
        for answer, point in zip(got_knn, points):
            assert knn_pairs(answer) == knn_pairs(oracle.knn(tuple(point), 6))
        assert grid.snapshot_rebuilds == packed

    def test_bulk_load_resets_migration_counter(self):
        grid, boxes = self._loaded_grid()
        new_big = AABB(boxes[0].lo, tuple(c + 20.0 for c in boxes[0].lo))
        grid.update(0, boxes[0], new_big)
        assert grid.level_migrations == 1
        grid.bulk_load(_two_level_dataset(seed=23))
        assert grid.level_migrations == 0

    def test_denormal_extent_lands_on_finest_level(self):
        """Regression: a denormal-extent box overflowed the level-selection
        log (``int(floor(inf))``) instead of clamping to the finest level."""
        grid = MultiResolutionGrid(universe=AABB((0.0,) * 3, (32.0,) * 3))
        grid.bulk_load([(0, AABB((0.0, 0.0, 0.0), (0.0, 0.0, 5e-324)))])
        assert grid.level_populations()[-1] == 1
        assert grid.knn((0.0, 0.0, 0.0), 1)[0][1] == 0
