"""Dataset generators: determinism, bounds, paper-matching statistics."""

import math

import numpy as np
import pytest

from repro.datasets.neuroscience import generate_neurons
from repro.datasets.points import (
    clustered_boxes,
    gaussian_cluster_points,
    uniform_boxes,
    uniform_points,
)
from repro.datasets.queries import (
    random_range_queries,
    range_queries_for_selectivity,
    selectivity_to_extent,
)
from repro.datasets.trajectories import (
    BrownianMotion,
    LinearMotion,
    PlasticityMotion,
    apply_moves,
    displacement_stats,
)
from repro.geometry.aabb import AABB

from conftest import UNIVERSE_3D


class TestPointGenerators:
    def test_uniform_points_inside(self):
        for _, box in uniform_points(200, UNIVERSE_3D, seed=1):
            assert UNIVERSE_3D.contains_box(box)
            assert box.is_degenerate()

    def test_uniform_boxes_inside_with_extents(self):
        for _, box in uniform_boxes(200, UNIVERSE_3D, 0.5, 3.0, seed=2):
            assert UNIVERSE_3D.contains_box(box)

    def test_deterministic(self):
        a = uniform_boxes(50, UNIVERSE_3D, seed=3)
        b = uniform_boxes(50, UNIVERSE_3D, seed=3)
        assert a == b
        c = uniform_boxes(50, UNIVERSE_3D, seed=4)
        assert a != c

    def test_clusters_are_clustered(self):
        clustered = gaussian_cluster_points(2000, UNIVERSE_3D, clusters=3, seed=5)
        uniform = uniform_points(2000, UNIVERSE_3D, seed=5)

        def mean_nn_gap(items):
            coords = np.asarray([box.lo for _, box in items])
            sample = coords[:100]
            gaps = []
            for point in sample:
                dists = np.linalg.norm(coords - point, axis=1)
                gaps.append(np.partition(dists, 1)[1])
            return float(np.mean(gaps))

        assert mean_nn_gap(clustered) < mean_nn_gap(uniform)

    def test_elongation(self):
        items = clustered_boxes(100, UNIVERSE_3D, elongation=25.0, max_extent=1.0, seed=6)
        ratios = []
        for _, box in items:
            extents = sorted(box.extents())
            if extents[0] > 0:
                ratios.append(extents[-1] / extents[0])
        assert np.median(ratios) > 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_points(-1, UNIVERSE_3D)
        with pytest.raises(ValueError):
            uniform_boxes(10, UNIVERSE_3D, min_extent=5.0, max_extent=1.0)
        with pytest.raises(ValueError):
            clustered_boxes(10, UNIVERSE_3D, elongation=0.5)


class TestNeuronGenerator:
    def test_counts_and_mapping(self):
        ds = generate_neurons(neurons=10, segments_per_neuron=30, seed=7)
        assert len(ds) == 300
        assert set(ds.neuron_of.values()) == set(range(10))
        assert len(ds.items) == 300

    def test_segments_are_elongated_capsules(self):
        ds = generate_neurons(neurons=5, segments_per_neuron=40, seed=8)
        lengths = [c.length() for c in ds.capsules.values()]
        radii = [c.radius for c in ds.capsules.values()]
        # Elements are elongated in the aggregate (the Figure 4 shape); wall
        # clamping may shorten a handful of segments.
        elongated = sum(1 for l, r in zip(lengths, radii) if l > r)
        assert elongated >= 0.95 * len(lengths)

    def test_inside_universe(self):
        ds = generate_neurons(neurons=5, segments_per_neuron=40, seed=9)
        hull = ds.universe.expanded(0.2)  # radius may poke out slightly
        for _, box in ds.items:
            assert hull.contains_box(box)

    def test_extent_stats(self):
        ds = generate_neurons(neurons=5, segments_per_neuron=20, seed=10)
        mean, biggest = ds.element_extent_stats()
        assert 0 < mean <= biggest

    def test_deterministic(self):
        a = generate_neurons(neurons=3, segments_per_neuron=10, seed=11)
        b = generate_neurons(neurons=3, segments_per_neuron=10, seed=11)
        assert [c.bounds() for c in a.capsules.values()] == [
            c.bounds() for c in b.capsules.values()
        ]


class TestMotionModels:
    def test_plasticity_matches_paper_statistics(self):
        """Mean displacement 0.04 with <0.5% beyond 0.1 (§4.1)."""
        items = dict(uniform_points(20_000, UNIVERSE_3D, seed=12))
        motion = PlasticityMotion(universe=UNIVERSE_3D, seed=13)
        moves = motion.step(items)
        mean, tail = displacement_stats(moves)
        assert mean == pytest.approx(0.04, rel=0.05)
        assert tail < 0.005

    def test_all_elements_move(self):
        items = dict(uniform_points(500, UNIVERSE_3D, seed=14))
        moves = PlasticityMotion(universe=UNIVERSE_3D, seed=15).step(items)
        assert len(moves) == 500

    def test_moving_fraction(self):
        items = dict(uniform_points(1000, UNIVERSE_3D, seed=16))
        motion = BrownianMotion(0.1, UNIVERSE_3D, moving_fraction=0.25, seed=17)
        assert len(motion.step(items)) == 250

    def test_extents_preserved_at_walls(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))  # hugging the corner
        motion = BrownianMotion(5.0, UNIVERSE_3D, seed=18)
        for _ in range(10):
            moves = motion.step({1: box})
            (eid, old, new) = moves[0]
            assert new.extents() == pytest.approx(old.extents())
            assert UNIVERSE_3D.contains_box(new)
            box = new

    def test_linear_motion_is_straight(self):
        items = {1: AABB((50, 50, 50), (50, 50, 50))}
        motion = LinearMotion(speed=0.5, universe=UNIVERSE_3D, seed=19)
        first = motion.step(items)
        apply_moves(items, first)
        second = motion.step(items)
        d1 = np.asarray(first[0][2].center()) - np.asarray(first[0][1].center())
        d2 = np.asarray(second[0][2].center()) - np.asarray(second[0][1].center())
        assert np.allclose(d1, d2)

    def test_apply_moves(self):
        items = dict(uniform_points(50, UNIVERSE_3D, seed=20))
        moves = PlasticityMotion(universe=UNIVERSE_3D, seed=21).step(items)
        apply_moves(items, moves)
        for eid, _, new in moves:
            assert items[eid] == new


class TestQueryGenerators:
    def test_selectivity_to_extent(self):
        extent = selectivity_to_extent(1e-3, UNIVERSE_3D)
        assert (extent / 100.0) ** 3 == pytest.approx(1e-3)

    def test_paper_selectivity(self):
        """5×10⁻⁴ % of the universe — the Fig. 2 query size."""
        extent = selectivity_to_extent(5e-6, UNIVERSE_3D)
        assert 0 < extent < 100

    def test_queries_clipped_to_universe(self):
        for query in random_range_queries(50, UNIVERSE_3D, extent=30.0, seed=22):
            assert UNIVERSE_3D.contains_box(query)

    def test_selectivity_queries(self):
        queries = range_queries_for_selectivity(10, UNIVERSE_3D, 1e-4, seed=23)
        assert len(queries) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            selectivity_to_extent(0.0, UNIVERSE_3D)
        with pytest.raises(ValueError):
            random_range_queries(-1, UNIVERSE_3D, 1.0)
