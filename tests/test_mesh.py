"""Mesh substrate and the dataset-as-index family (DLS, OCTOPUS, FLAT)."""

import numpy as np
import pytest

from repro.datasets.points import uniform_boxes
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.mesh.connectivity import Mesh
from repro.mesh.dls import DLS
from repro.mesh.flat import FLAT
from repro.mesh.generators import carve_hole, structured_tet_mesh
from repro.mesh.octopus import Octopus

from conftest import UNIVERSE_3D, assert_same_range_results, make_queries


@pytest.fixture(scope="module")
def convex_mesh():
    return structured_tet_mesh(5, 5, 5)


@pytest.fixture(scope="module")
def concave_mesh():
    mesh = structured_tet_mesh(6, 6, 4)
    return carve_hole(mesh, AABB((2.0, 2.0, -1.0), (4.0, 4.0, 5.0)))


def _mesh_queries(mesh, count, seed, extent=(0.4, 2.0)):
    rng = np.random.default_rng(seed)
    hull = mesh.hull()
    lo = np.asarray(hull.lo)
    hi = np.asarray(hull.hi)
    queries = []
    for _ in range(count):
        start = rng.uniform(lo, hi)
        end = np.minimum(start + rng.uniform(*extent, size=3), hi)
        queries.append(AABB(start, end))
    return queries


class TestMeshStructure:
    def test_cell_count(self, convex_mesh):
        assert len(convex_mesh) == 5 * 5 * 5 * 6  # Kuhn: 6 tets per cube

    def test_adjacency_symmetric(self, convex_mesh):
        for cell in convex_mesh.cells:
            for neighbor in convex_mesh.neighbors(cell.cid):
                assert cell.cid in convex_mesh.neighbors(neighbor)

    def test_interior_tet_has_four_neighbors(self, convex_mesh):
        interior = [
            cell.cid
            for cell in convex_mesh.cells
            if len(convex_mesh.neighbors(cell.cid)) == 4
        ]
        assert interior  # a 5x5x5 mesh has interior tets

    def test_single_component(self, convex_mesh):
        assert convex_mesh.connected_components() == 1

    def test_boundary_cells_nonempty(self, convex_mesh):
        assert len(convex_mesh.boundary_cells) > 0

    def test_carve_hole_removes_cells(self, convex_mesh, concave_mesh):
        assert len(concave_mesh) < 6 * 6 * 4 * 6

    def test_carve_everything_rejected(self, convex_mesh):
        with pytest.raises(ValueError):
            carve_hole(convex_mesh, AABB((-10, -10, -10), (100, 100, 100)))

    def test_deformation_updates_geometry(self):
        mesh = structured_tet_mesh(2, 2, 2)
        before = mesh.bounds(0)
        mesh.move_vertex(0, (0.2, 0.0, 0.0))
        assert mesh.bounds(0) != before or mesh.centroid(0) != before.center()

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            structured_tet_mesh(0, 1, 1)
        with pytest.raises(ValueError):
            structured_tet_mesh(1, 1, 1, spacing=0)


class TestDLS:
    def test_matches_scan_on_convex(self, convex_mesh):
        dls = DLS(convex_mesh)
        for query in _mesh_queries(convex_mesh, 25, seed=1):
            assert sorted(dls.range_query(query)) == sorted(convex_mesh.scan_range(query))

    def test_stale_seeds_still_correct(self, convex_mesh):
        """The approximate index 'only needs to be updated infrequently'."""
        mesh = structured_tet_mesh(4, 4, 4)
        dls = DLS(mesh)
        rng = np.random.default_rng(2)
        mesh.jitter(0.02, rng)  # deform WITHOUT refreshing seeds
        for query in _mesh_queries(mesh, 15, seed=3):
            assert sorted(dls.range_query(query)) == sorted(mesh.scan_range(query))

    def test_query_outside_mesh_is_empty(self, convex_mesh):
        assert DLS(convex_mesh).range_query(AABB((50, 50, 50), (51, 51, 51))) == []


class TestOctopus:
    def test_matches_scan_on_convex(self, convex_mesh):
        octopus = Octopus(convex_mesh)
        for query in _mesh_queries(convex_mesh, 25, seed=4):
            assert sorted(octopus.range_query(query)) == sorted(convex_mesh.scan_range(query))

    def test_matches_scan_on_concave(self, concave_mesh):
        """The OCTOPUS claim: complete results despite holes."""
        octopus = Octopus(concave_mesh)
        for query in _mesh_queries(concave_mesh, 40, seed=5):
            assert sorted(octopus.range_query(query)) == sorted(
                concave_mesh.scan_range(query)
            )

    def test_disconnected_query_regions(self, concave_mesh):
        """A query spanning the hole touches cells on both sides — a single
        flood cannot reach them all; multiple seeds must."""
        query = AABB((1.0, 2.5, 0.5), (5.0, 3.5, 1.5))  # crosses the carved hole
        octopus = Octopus(concave_mesh)
        assert sorted(octopus.range_query(query)) == sorted(concave_mesh.scan_range(query))

    def test_deformed_concave_mesh(self, concave_mesh):
        mesh = carve_hole(structured_tet_mesh(5, 5, 3), AABB((2, 2, -1), (3, 3, 4)))
        octopus = Octopus(mesh)
        rng = np.random.default_rng(6)
        mesh.jitter(0.02, rng)
        for query in _mesh_queries(mesh, 15, seed=7):
            assert sorted(octopus.range_query(query)) == sorted(mesh.scan_range(query))


class TestFLAT:
    def test_matches_oracle(self, items_3d, queries_3d):
        flat = FLAT(universe=UNIVERSE_3D)
        flat.bulk_load(items_3d)
        assert_same_range_results(flat, items_3d, queries_3d)

    def test_updates_local(self, items_3d):
        flat = FLAT(universe=UNIVERSE_3D)
        flat.bulk_load(items_3d)
        live = dict(items_3d)
        rng = np.random.default_rng(8)
        for eid in list(live)[:200]:
            delta = rng.normal(0, 0.05, 3)
            old = live[eid]
            new = AABB(np.asarray(old.lo) + delta, np.asarray(old.hi) + delta)
            flat.update(eid, old, new)
            live[eid] = new
        assert_same_range_results(flat, list(live.items()), make_queries(8, seed=9))

    def test_stale_seed_index_tolerated(self, items_3d):
        flat = FLAT(universe=UNIVERSE_3D, seed_sample=4)
        flat.bulk_load(items_3d)
        flat._seed_tiles = []  # worst case: seed index completely gone
        assert_same_range_results(flat, items_3d, make_queries(6, seed=10))

    def test_knn(self, items_3d):
        flat = FLAT(universe=UNIVERSE_3D)
        flat.bulk_load(items_3d)
        oracle = LinearScan()
        oracle.bulk_load(items_3d)
        got = flat.knn((50, 50, 50), 6)
        expected = oracle.knn((50, 50, 50), 6)
        assert [round(d, 9) for d, _ in got] == [round(d, 9) for d, _ in expected]

    def test_insert_delete(self):
        flat = FLAT(universe=UNIVERSE_3D)
        box = AABB((1, 1, 1), (2, 2, 2))
        flat.insert(5, box)
        assert flat.range_query(AABB((0, 0, 0), (3, 3, 3))) == [5]
        flat.delete(5, box)
        assert len(flat) == 0
        with pytest.raises(KeyError):
            flat.delete(5, box)
