"""Spatial LSH: recall, constant-work updates, hash-family behaviour."""

import numpy as np
import pytest

from repro.core.spatial_lsh import SpatialLSH
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan

from conftest import UNIVERSE_3D, assert_same_range_results, make_items, make_queries


def _lsh(items, **kwargs):
    defaults = dict(dims=3, num_tables=8, hashes_per_table=2, bucket_width=6.0, seed=4)
    defaults.update(kwargs)
    index = SpatialLSH(**defaults)
    index.bulk_load(items)
    return index


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SpatialLSH(num_tables=0)
        with pytest.raises(ValueError):
            SpatialLSH(bucket_width=0)

    def test_suggest_bucket_width_positive(self):
        width = SpatialLSH.suggest_bucket_width(10_000, UNIVERSE_3D, k=10)
        assert width > 0


class TestKNNRecall:
    def test_recall_at_10(self):
        """The §3.3 open question, answered: LSH reaches high recall in 3-d."""
        items = make_items(2000, seed=6, points=True)
        width = SpatialLSH.suggest_bucket_width(2000, UNIVERSE_3D, k=10)
        index = _lsh(items, bucket_width=width)
        oracle = LinearScan()
        oracle.bulk_load(items)
        rng = np.random.default_rng(7)
        recalls = []
        for _ in range(20):
            point = tuple(rng.uniform(5, 95, 3))
            exact = {eid for _, eid in oracle.knn(point, 10)}
            approx = {eid for _, eid in index.knn(point, 10)}
            recalls.append(len(exact & approx) / 10.0)
        assert np.mean(recalls) >= 0.9

    def test_knn_returns_k(self):
        items = make_items(100, seed=1, points=True)
        index = _lsh(items)
        assert len(index.knn((50, 50, 50), 7)) == 7

    def test_knn_empty_and_zero_k(self):
        index = SpatialLSH()
        assert index.knn((0, 0, 0), 5) == []
        index.bulk_load(make_items(10, seed=1, points=True))
        assert index.knn((0, 0, 0), 0) == []


class TestRangeFallback:
    def test_range_is_exact(self, items_3d, queries_3d):
        index = _lsh(items_3d)
        assert_same_range_results(index, items_3d, queries_3d)


class TestUpdates:
    def test_update_moves_between_buckets(self):
        items = make_items(200, seed=2, points=True)
        index = _lsh(items)
        old = items[0][1]
        new = AABB((99, 99, 99), (99, 99, 99))
        index.update(0, old, new)
        nearest = index.knn((99, 99, 99), 1)
        assert nearest[0][1] == 0

    def test_update_work_is_constant(self):
        """Hash relocation cost must not grow with dataset size."""
        import time

        small = _lsh(make_items(200, seed=2, points=True))
        big = _lsh(make_items(5000, seed=2, points=True))

        def time_updates(index, items):
            start = time.perf_counter()
            for eid, box in items[:50]:
                moved = AABB.from_point(tuple(c + 0.7 for c in box.lo))
                index.update(eid, box, moved)
            return time.perf_counter() - start

        t_small = time_updates(small, make_items(200, seed=2, points=True))
        t_big = time_updates(big, make_items(5000, seed=2, points=True))
        assert t_big < t_small * 20  # generous: O(1) vs O(n) would be ~25x

    def test_delete(self):
        items = make_items(50, seed=3, points=True)
        index = _lsh(items)
        index.delete(0, items[0][1])
        assert len(index) == 49
        with pytest.raises(KeyError):
            index.delete(0, items[0][1])

    def test_insert_duplicate_rejected(self):
        items = make_items(10, seed=3, points=True)
        index = _lsh(items)
        with pytest.raises(ValueError):
            index.insert(0, items[0][1])

    def test_hash_probes_counted(self):
        items = make_items(300, seed=5, points=True)
        index = _lsh(items)
        index.knn((50, 50, 50), 5)
        assert index.counters.hash_probes > 0
