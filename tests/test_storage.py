"""Page store, buffer pool and cache simulator."""

import pytest

from repro.instrumentation.counters import Counters
from repro.storage.buffer_pool import BufferPool
from repro.storage.cache import Arena, CacheSimulator
from repro.storage.pagestore import PageStore


class TestPageStore:
    def test_allocate_read_write(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("payload")
        assert counters.pages_written == 1
        assert store.read(pid) == "payload"
        assert counters.pages_read == 1
        store.write(pid, "new")
        assert counters.pages_written == 2
        assert store.peek(pid) == "new"
        assert counters.pages_read == 1  # peek is free

    def test_allocate_empty_is_free(self):
        counters = Counters()
        store = PageStore(counters=counters)
        store.allocate()
        assert counters.pages_written == 0

    def test_free_and_errors(self):
        store = PageStore()
        pid = store.allocate("x")
        store.free(pid)
        with pytest.raises(KeyError):
            store.read(pid)
        with pytest.raises(KeyError):
            store.write(pid, "y")
        with pytest.raises(KeyError):
            store.free(pid)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)


class TestBufferPool:
    def test_hit_avoids_disk_read(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("v")
        pool = BufferPool(store, capacity=4)
        pool.read(pid)
        pool.read(pid)
        assert counters.pages_read == 1
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_rate() == 0.5

    def test_lru_eviction(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pids = [store.allocate(i) for i in range(3)]
        pool = BufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[2])  # evicts pids[0]
        pool.read(pids[0])  # miss again
        assert counters.pages_read == 4

    def test_writeback_on_eviction(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pids = [store.allocate(i) for i in range(2)]
        pool = BufferPool(store, capacity=1)
        pool.write(pids[0], "dirty")
        pool.read(pids[1])  # evicts the dirty frame
        assert store.peek(pids[0]) == "dirty"

    def test_clear_flushes(self):
        store = PageStore()
        pid = store.allocate("orig")
        pool = BufferPool(store, capacity=4)
        pool.write(pid, "changed")
        pool.clear()
        assert store.peek(pid) == "changed"
        pool.read(pid)
        assert pool.misses == 1  # cold after clear

    def test_zero_capacity(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("v")
        pool = BufferPool(store, capacity=0)
        pool.read(pid)
        pool.read(pid)
        assert counters.pages_read == 2  # nothing cached


class TestArena:
    def test_sequential(self):
        arena = Arena()
        assert arena.allocate(10) == 0
        assert arena.allocate(5) == 10
        assert arena.used_bytes == 15

    def test_alignment(self):
        arena = Arena(alignment=64)
        arena.allocate(10)
        assert arena.allocate(10) == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            Arena(alignment=0)
        with pytest.raises(ValueError):
            Arena().allocate(0)


class TestCacheSimulator:
    def test_miss_then_hit(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        assert cache.access(0, 1) == 1
        assert cache.access(0, 1) == 0
        assert cache.miss_rate() == 0.5

    def test_spanning_access(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        misses = cache.access(0, 129)  # lines 0, 1, 2
        assert misses == 3

    def test_set_conflict_eviction(self):
        # 2 sets x 1 way: lines 0 and 2 collide in set 0.
        cache = CacheSimulator(capacity_bytes=128, line_bytes=64, associativity=1)
        cache.access(0)  # line 0 -> set 0
        cache.access(128)  # line 2 -> set 0, evicts line 0
        assert cache.access(0) == 1  # miss again

    def test_clear(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.clear()
        assert cache.access(0) == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheSimulator(capacity_bytes=100, line_bytes=64, associativity=3)
        cache = CacheSimulator()
        with pytest.raises(ValueError):
            cache.access(0, 0)
