"""Page store, buffer pool, cache simulator — and the spill substrate."""

import os

import numpy as np
import pytest

from repro.instrumentation.counters import Counters
from repro.storage.buffer_pool import BufferPool
from repro.storage.cache import Arena, CacheSimulator
from repro.storage.pagestore import FilePageStore, MappedPageStore, PageStore


class TestMappedPageStore:
    """ISSUE 9 tentpole: zero-copy mmap views over the file page store."""

    def test_read_view_roundtrip_and_counters(self, tmp_path):
        counters = Counters()
        store = MappedPageStore(
            str(tmp_path / "pages.bin"), page_size=64, counters=counters
        )
        pid = store.allocate(b"hello mapped world")
        view = store.read_view(pid)
        assert bytes(view) == b"hello mapped world"
        assert not view.flags.owndata  # a view over the mmap
        assert not view.flags.writeable
        assert counters.pages_read == 1
        assert counters.zero_copy_reads == 1
        assert counters.mapped_bytes == len(b"hello mapped world")
        assert store.read(pid) == b"hello mapped world"  # byte path still works
        store.close()

    def test_views_see_later_writes_through_page_cache(self, tmp_path):
        store = MappedPageStore(str(tmp_path / "pages.bin"), page_size=16)
        pid = store.allocate(b"aaaaaaaa")
        assert bytes(store.read_view(pid)) == b"aaaaaaaa"
        store.write(pid, b"bbbbbbbb")
        # A fresh view reflects the write: file writes and the read-only
        # mapping are coherent through the kernel's unified page cache.
        assert bytes(store.read_view(pid)) == b"bbbbbbbb"
        store.close()

    def test_growth_remaps_without_invalidating_old_views(self, tmp_path):
        store = MappedPageStore(str(tmp_path / "pages.bin"), page_size=16)
        first = store.allocate(b"0123456789abcdef")
        early_view = store.read_view(first)
        for i in range(8):  # grow the file well past the first mapping
            store.allocate(bytes([i]) * 16)
        late_view = store.read_view(8)
        assert bytes(late_view) == bytes([7]) * 16
        # The early view's buffer (the retired mapping) is still alive.
        assert bytes(early_view) == b"0123456789abcdef"
        store.close()  # BufferError-safe: live views keep retired maps open

    def test_run_view_spans_pages(self, tmp_path):
        counters = Counters()
        store = MappedPageStore(
            str(tmp_path / "pages.bin"), page_size=16, counters=counters
        )
        payload = bytes(range(48))
        for start in range(0, 48, 16):
            store.allocate(payload[start : start + 16])
        run = store.run_view(0, 40, offset=4)
        assert bytes(run) == payload[4:44]
        assert counters.zero_copy_reads == 1
        assert counters.pages_read == 3  # the covering pages are charged
        with pytest.raises(ValueError):
            store.run_view(2, 32)  # reaches past the allocated slots
        store.close()

    def test_buffer_pool_read_view_keeps_residency_accounting(self, tmp_path):
        store = MappedPageStore(str(tmp_path / "pages.bin"), page_size=16)
        pids = [store.allocate(bytes([i]) * 8) for i in range(4)]
        pool = BufferPool(store, capacity=2)
        for pid in pids:
            view = pool.read_view(pid)
            assert bytes(view) == store.peek(pid)
        assert len(pool) <= 2
        assert pool.misses == 4
        pool.read_view(pids[-1])
        assert pool.hits == 1  # warm frames serve the cached view
        store.close()


class TestPageStore:
    def test_allocate_read_write(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("payload")
        assert counters.pages_written == 1
        assert store.read(pid) == "payload"
        assert counters.pages_read == 1
        store.write(pid, "new")
        assert counters.pages_written == 2
        assert store.peek(pid) == "new"
        assert counters.pages_read == 1  # peek is free

    def test_allocate_empty_is_free(self):
        counters = Counters()
        store = PageStore(counters=counters)
        store.allocate()
        assert counters.pages_written == 0

    def test_free_and_errors(self):
        store = PageStore()
        pid = store.allocate("x")
        store.free(pid)
        with pytest.raises(KeyError):
            store.read(pid)
        with pytest.raises(KeyError):
            store.write(pid, "y")
        with pytest.raises(KeyError):
            store.free(pid)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)


class TestBufferPool:
    def test_hit_avoids_disk_read(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("v")
        pool = BufferPool(store, capacity=4)
        pool.read(pid)
        pool.read(pid)
        assert counters.pages_read == 1
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_rate() == 0.5

    def test_lru_eviction(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pids = [store.allocate(i) for i in range(3)]
        pool = BufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[2])  # evicts pids[0]
        pool.read(pids[0])  # miss again
        assert counters.pages_read == 4

    def test_writeback_on_eviction(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pids = [store.allocate(i) for i in range(2)]
        pool = BufferPool(store, capacity=1)
        pool.write(pids[0], "dirty")
        pool.read(pids[1])  # evicts the dirty frame
        assert store.peek(pids[0]) == "dirty"

    def test_clear_flushes(self):
        store = PageStore()
        pid = store.allocate("orig")
        pool = BufferPool(store, capacity=4)
        pool.write(pid, "changed")
        pool.clear()
        assert store.peek(pid) == "changed"
        pool.read(pid)
        assert pool.misses == 1  # cold after clear

    def test_zero_capacity(self):
        counters = Counters()
        store = PageStore(counters=counters)
        pid = store.allocate("v")
        pool = BufferPool(store, capacity=0)
        pool.read(pid)
        pool.read(pid)
        assert counters.pages_read == 2  # nothing cached


class TestFilePageStore:
    def test_roundtrip_and_accounting(self, tmp_path):
        counters = Counters()
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=64, counters=counters)
        pid = store.allocate(b"hello")
        assert counters.pages_written == 1
        assert store.read(pid) == b"hello"
        assert counters.pages_read == 1
        store.write(pid, b"rewritten")
        assert counters.pages_written == 2
        assert store.peek(pid) == b"rewritten"
        assert counters.pages_read == 1  # peek is free
        store.close()

    def test_payloads_persist_in_real_file(self, tmp_path):
        path = tmp_path / "pages.bin"
        store = FilePageStore(str(path), page_size=16)
        store.allocate(b"0123456789abcdef")
        store._file.flush()
        assert path.stat().st_size >= 16
        store.close()
        assert not path.exists()  # close unlinks by default

    def test_free_slots_are_reused(self, tmp_path):
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=16)
        first = store.allocate(b"aa")
        store.allocate(b"bb")
        store.free(first)
        reused = store.allocate(b"cc")
        assert reused == first
        assert store.file_bytes == 2 * 16  # the file did not grow
        with pytest.raises(KeyError):
            store.read(999)
        store.close()

    def test_free_slots_reused_lowest_first(self, tmp_path):
        # The free list is a heap, not a LIFO stack: after freeing slots
        # out of order, allocations return them ascending — so a multi-page
        # allocation that follows a multi-page free lands contiguous again.
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=16)
        pids = [store.allocate(bytes([i]) * 4) for i in range(6)]
        for pid in (pids[4], pids[1], pids[3], pids[2]):
            store.free(pid)
        assert [store.allocate(b"x") for _ in range(4)] == [1, 2, 3, 4]
        store.close()

    def test_fragmentation_gauge(self, tmp_path):
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=16)
        assert store.fragmentation() == 0.0  # empty store: no holes
        pids = [store.allocate(b"p") for i in range(4)]
        assert store.fragmentation() == 0.0  # fully packed
        store.free(pids[0])
        store.free(pids[2])
        assert store.fragmentation() == pytest.approx(0.5)
        store.allocate(b"q")  # refills slot 0
        assert store.fragmentation() == pytest.approx(0.25)
        store.close()

    def test_oversized_payload_rejected(self, tmp_path):
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=4)
        with pytest.raises(ValueError):
            store.allocate(b"too large")
        store.close()

    def test_buffer_pool_composes(self, tmp_path):
        counters = Counters()
        store = FilePageStore(str(tmp_path / "pages.bin"), page_size=16, counters=counters)
        pids = [store.allocate(bytes([i]) * 8) for i in range(4)]
        pool = BufferPool(store, capacity=2)
        for pid in pids:
            assert pool.read(pid) == store.peek(pid)
        assert len(pool) <= 2
        assert counters.pages_read == 4  # one charged miss per cold page
        assert pool.read(pids[-1]) == store.peek(pids[-1])
        assert counters.pages_read == 4  # warm hit: no disk transfer
        store.close()


class TestSpillLifecycle:
    """ISSUE 5 satellite: no orphan spill files, bounded pool residency."""

    def _boxes(self, n, seed, offset=0):
        rng = np.random.default_rng(seed)
        from repro.geometry.aabb import AABB

        lo = rng.uniform(0.0, 49.0, size=(n, 3))
        hi = np.minimum(lo + rng.uniform(0.1, 1.5, size=(n, 3)), 50.0)
        return [(offset + eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]

    def test_session_close_removes_every_spill_file(self, tmp_path):
        from repro.joins import JoinSession, PairJoinSpec

        spill_dir = tmp_path / "spills"
        session = JoinSession(budget=120_000, spill_dir=str(spill_dir))
        session.run(PairJoinSpec(self._boxes(1200, 1), self._boxes(1200, 2, offset=10_000)))
        assert session.stats.tiles_spilled > 0
        assert os.listdir(spill_dir) != []
        session.close()
        assert os.listdir(spill_dir) == []  # caller-owned dir survives, empty
        session.close()  # idempotent

    def test_strategy_error_removes_every_spill_file(self, tmp_path, monkeypatch):
        from repro.exec.external_join import SpillPBSMJoin
        from repro.joins import kernels

        def explode(*args, **kwargs):
            raise RuntimeError("merge kernel down")

        monkeypatch.setattr(kernels, "replica_tile_pairs", explode)
        strategy = SpillPBSMJoin(budget=120_000, spill_dir=str(tmp_path))
        with pytest.raises(RuntimeError):
            strategy.join(
                self._boxes(1200, 3), self._boxes(1200, 4, offset=10_000), Counters()
            )
        assert os.listdir(tmp_path) == []

    def test_contiguous_reads_are_zero_copy_views(self, tmp_path):
        from repro.exec.spill import SpillManager

        counters = Counters()
        with SpillManager(
            dir=str(tmp_path), page_size=1024, counters=counters
        ) as spill:
            data = np.random.default_rng(7).uniform(size=2048)  # 16 pages
            handle = spill.spill(data)
            assert handle.contiguous
            whole = spill.read(handle)
            np.testing.assert_array_equal(whole, data)
            assert not whole.flags.owndata  # a view over the mmap, not a copy
            assert not whole.flags.writeable
            window = spill.read_rows(handle, 100, 1900)
            np.testing.assert_array_equal(window, data[100:1900])
            assert not window.flags.owndata
            assert counters.zero_copy_reads == 2
            assert counters.mapped_bytes == (2048 + 1800) * 8
            assert spill.pool.misses == 0  # the pool never saw these reads

    def test_pool_residency_bounded_under_spill_pressure(self, tmp_path):
        # Fragmented handles (pages on non-consecutive slots) cannot be
        # served as one mapped view; they fall back to the bounded pool.
        from repro.exec.spill import SpillManager

        pool_pages = 4
        with SpillManager(
            dir=str(tmp_path), page_size=1024, pool_pages=pool_pages
        ) as spill:
            early = spill.spill(np.random.default_rng(0).uniform(size=1024))  # slots 0-7
            spill.spill(np.random.default_rng(1).uniform(size=1024))  # slots 8-15
            spill.free(early)
            handles = [
                # The first reuses freed slots 0-7 then extends past the
                # keeper at 8-15: pages land on two disjoint slot ranges.
                spill.spill(np.random.default_rng(2 + i).uniform(size=2048))
                for i in range(4)
            ]
            assert any(not handle.contiguous for handle in handles)
            for handle in handles:
                spill.read(handle)
                assert len(spill.pool) <= pool_pages
            # Partial re-reads churn the pool without exceeding the budget.
            for handle in handles:
                spill.read_rows(handle, 100, 1900)
                assert len(spill.pool) <= pool_pages
            assert spill.pool.misses > 0


class TestArena:
    def test_sequential(self):
        arena = Arena()
        assert arena.allocate(10) == 0
        assert arena.allocate(5) == 10
        assert arena.used_bytes == 15

    def test_alignment(self):
        arena = Arena(alignment=64)
        arena.allocate(10)
        assert arena.allocate(10) == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            Arena(alignment=0)
        with pytest.raises(ValueError):
            Arena().allocate(0)


class TestCacheSimulator:
    def test_miss_then_hit(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        assert cache.access(0, 1) == 1
        assert cache.access(0, 1) == 0
        assert cache.miss_rate() == 0.5

    def test_spanning_access(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        misses = cache.access(0, 129)  # lines 0, 1, 2
        assert misses == 3

    def test_set_conflict_eviction(self):
        # 2 sets x 1 way: lines 0 and 2 collide in set 0.
        cache = CacheSimulator(capacity_bytes=128, line_bytes=64, associativity=1)
        cache.access(0)  # line 0 -> set 0
        cache.access(128)  # line 2 -> set 0, evicts line 0
        assert cache.access(0) == 1  # miss again

    def test_clear(self):
        cache = CacheSimulator(capacity_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.clear()
        assert cache.access(0) == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheSimulator(capacity_bytes=100, line_bytes=64, associativity=3)
        cache = CacheSimulator()
        with pytest.raises(ValueError):
            cache.access(0, 0)
