"""Cross-cutting integration tests: engine × index × monitors × economics.

These scenarios exercise the full stack the way a downstream user would:
a living simulation whose index is maintained under each strategy, with
in-situ analysis running, and with the results cross-checked against the
linear-scan oracle at every step.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveSimulationIndex
from repro.core.amortization import calibrate
from repro.core.uniform_grid import UniformGrid
from repro.datasets.neuroscience import generate_neurons
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import PlasticityMotion
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree
from repro.moving.bottom_up import BottomUpRTree
from repro.moving.lur_tree import LURTree
from repro.moving.throwaway import ThrowawayIndex
from repro.sim.engine import TimeSteppedSimulation
from repro.sim.monitors import DensityMonitor, RangeMonitor
from repro.sim.plasticity import PlasticityModel


@pytest.fixture(scope="module")
def dataset():
    return generate_neurons(neurons=12, segments_per_neuron=25, seed=21)


INDEX_FACTORIES = [
    pytest.param(lambda u: UniformGrid(universe=u), id="grid"),
    pytest.param(lambda u: RTree(max_entries=8), id="rtree"),
    pytest.param(lambda u: BottomUpRTree(max_entries=8), id="bottom-up"),
    pytest.param(lambda u: LURTree(grace=0.2), id="lur"),
    pytest.param(lambda u: ThrowawayIndex(universe=u), id="throwaway"),
]


class TestEngineWithEveryIndexFamily:
    @pytest.mark.parametrize("factory", INDEX_FACTORIES)
    def test_simulation_keeps_index_consistent(self, dataset, factory):
        index = factory(dataset.universe)
        model = PlasticityModel(
            dict(dataset.items), dataset.universe, neighbourhood_queries=4, seed=22
        )
        monitor = RangeMonitor(dataset.universe, queries_per_step=5, extent=1.0, seed=23)
        sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance="update")
        sim.run(3)
        oracle = LinearScan()
        oracle.bulk_load(list(sim.state.items()))
        for query in random_range_queries(5, dataset.universe, extent=2.0, seed=24):
            assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))


class TestCalibratedAdaptiveLoop:
    def test_adaptive_follows_economics_end_to_end(self, dataset):
        queries = random_range_queries(8, dataset.universe, extent=1.0, seed=25)
        moves = PlasticityMotion(universe=dataset.universe, seed=26).step(dict(dataset.items))
        costs = calibrate(
            index_factory=lambda: UniformGrid(universe=dataset.universe),
            items=dataset.items,
            moved_items=moves,
            query_boxes=queries,
            scan_factory=LinearScan,
        )
        index = AdaptiveSimulationIndex(dataset.universe, costs=costs)
        model = PlasticityModel(
            dict(dataset.items), dataset.universe, neighbourhood_queries=4, seed=27
        )
        monitor = RangeMonitor(dataset.universe, queries_per_step=10, extent=1.0, seed=28)
        sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance="adaptive")
        reports = sim.run(4)
        assert len(index.strategy_history) == 4
        assert all(r.strategy in ("update", "rebuild", "scan") for r in reports)
        oracle = LinearScan()
        oracle.bulk_load(list(sim.state.items()))
        probe = AABB.from_center(dataset.universe.center(), 2.0)
        assert sorted(index.range_query(probe)) == sorted(oracle.range_query(probe))


class TestMonitorsObserveConsistentState:
    def test_density_history_tracks_true_counts(self, dataset):
        regions = [
            AABB.from_center(dataset.universe.center(), 2.0),
            dataset.universe,  # whole-universe region counts everything
        ]
        index = UniformGrid(universe=dataset.universe)
        model = PlasticityModel(dict(dataset.items), dataset.universe, seed=29)
        monitor = DensityMonitor(regions)
        sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance="update")
        sim.run(3)
        for counts in monitor.history:
            assert counts[1] == len(dataset.items)  # nothing lost or duplicated

    def test_counter_attribution_per_step(self, dataset):
        """Every step's counter diff covers both update and monitor queries."""
        index = UniformGrid(universe=dataset.universe)
        model = PlasticityModel(
            dict(dataset.items), dataset.universe, neighbourhood_queries=6, seed=30
        )
        monitor = RangeMonitor(dataset.universe, queries_per_step=7, extent=1.0, seed=31)
        sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance="update")
        reports = sim.run(2)
        for report in reports:
            assert report.counters.updates == len(dataset.items)
            assert report.counters.cells_probed > 0
