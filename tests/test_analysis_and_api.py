"""Reporting helpers and the public API surface."""

import pytest

from repro.analysis.breakdown import (
    coarse_breakdown_rows,
    disk_vs_memory_report,
    memory_breakdown_report,
)
from repro.analysis.reporting import format_table, percent_bar
from repro.instrumentation.costmodel import READING, MemoryCostModel
from repro.instrumentation.counters import Counters


class TestFormatTable:
    def test_alignment_and_rule(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        table = format_table(["x"], [[0.000123456]])
        assert "1.235e-04" in table

    def test_zero(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestPercentBar:
    def test_full_and_empty(self):
        assert percent_bar(1.0, width=10) == "#" * 10
        assert percent_bar(0.0, width=10) == "." * 10

    def test_clamps(self):
        assert percent_bar(2.0, width=4) == "####"
        assert percent_bar(-1.0, width=4) == "...."


class TestBreakdownReports:
    def test_disk_vs_memory_shape(self):
        disk = Counters(pages_read=500, node_tests=1000, elem_tests=500)
        memory = Counters(node_tests=1000, elem_tests=500, bytes_touched=64_000)
        report = disk_vs_memory_report(disk, memory)
        assert "R-Tree on Disk" in report
        assert "R-Tree in Memory" in report

    def test_memory_breakdown_categories(self):
        counters = Counters(node_tests=100, elem_tests=50, bytes_touched=6400)
        report = memory_breakdown_report(counters)
        assert "intersection_tests_tree" in report
        assert "reading_data" in report

    def test_coarse_rows(self):
        breakdown = MemoryCostModel().breakdown(Counters(node_tests=10, bytes_touched=640))
        rows = coarse_breakdown_rows("label", breakdown)
        assert rows[0][0] == "label"
        assert rows[0][1] + rows[0][2] == pytest.approx(100.0)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The README quickstart must actually run."""
        from repro import AABB, UniformGrid
        from repro.datasets import uniform_boxes

        items = uniform_boxes(n=1000, universe=AABB((0, 0, 0), (100, 100, 100)), seed=1)
        index = UniformGrid()
        index.bulk_load(items)
        hits = index.range_query(AABB((10, 10, 10), (20, 20, 20)))
        assert isinstance(hits, list)
