"""Spatial joins: every algorithm against the nested-loop oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.neuroscience import generate_neurons
from repro.datasets.points import clustered_boxes, uniform_boxes
from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.joins.grid_join import grid_join, tiny_cell_self_join
from repro.joins.nested_loop import nested_loop_join, nested_loop_self_join
from repro.joins.pbsm import pbsm_join
from repro.joins.sweepline import sweepline_join
from repro.joins.synapse import SynapseDetector, distance_join
from repro.joins.touch import touch_join

from conftest import UNIVERSE_3D

ALGORITHMS = [sweepline_join, pbsm_join, touch_join, grid_join]


def _datasets(seed_a=1, seed_b=2, n_a=150, n_b=120):
    a = uniform_boxes(n_a, UNIVERSE_3D, 0.5, 5.0, seed=seed_a)
    b = [(eid + 10_000, box) for eid, box in uniform_boxes(n_b, UNIVERSE_3D, 0.5, 5.0, seed=seed_b)]
    return a, b


class TestBinaryJoins:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_oracle_uniform(self, algorithm):
        a, b = _datasets()
        expected = sorted(nested_loop_join(a, b))
        assert sorted(algorithm(a, b)) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_oracle_clustered(self, algorithm):
        a = clustered_boxes(120, UNIVERSE_3D, clusters=4, seed=3)
        b = [(eid + 10_000, box) for eid, box in clustered_boxes(90, UNIVERSE_3D, clusters=4, seed=4)]
        expected = sorted(nested_loop_join(a, b))
        assert sorted(algorithm(a, b)) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_inputs(self, algorithm):
        a, _ = _datasets()
        assert algorithm([], a) == []
        assert algorithm(a, []) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_elongated_elements(self, algorithm):
        """Narrow elements (the Figure 4 shape) must not break dedup."""
        a = clustered_boxes(60, UNIVERSE_3D, elongation=20.0, seed=5)
        b = [(eid + 10_000, box) for eid, box in clustered_boxes(60, UNIVERSE_3D, elongation=20.0, seed=6)]
        assert sorted(algorithm(a, b)) == sorted(nested_loop_join(a, b))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_property_random_seeds(self, seed_a, seed_b):
        a = uniform_boxes(40, UNIVERSE_3D, 0.5, 8.0, seed=seed_a)
        b = [(eid + 10_000, box) for eid, box in uniform_boxes(35, UNIVERSE_3D, 0.5, 8.0, seed=seed_b)]
        expected = sorted(nested_loop_join(a, b))
        for algorithm in ALGORITHMS:
            assert sorted(algorithm(a, b)) == expected

    def test_comparison_counts_below_nested_loop(self):
        a, b = _datasets(n_a=300, n_b=300)
        nested = Counters()
        nested_loop_join(a, b, nested)
        for algorithm in (pbsm_join, grid_join):
            counters = Counters()
            algorithm(a, b, counters=counters)
            assert counters.comparisons < nested.comparisons / 5


class TestSelfJoins:
    def test_self_join_id_ordering(self):
        items = uniform_boxes(80, UNIVERSE_3D, 1.0, 8.0, seed=7)
        pairs = nested_loop_self_join(items)
        assert all(a < b for a, b in pairs)

    def test_tiny_cell_matches_oracle(self):
        items = uniform_boxes(150, UNIVERSE_3D, 1.0, 4.0, seed=8)
        assert sorted(tiny_cell_self_join(items)) == sorted(nested_loop_self_join(items))

    def test_tiny_cell_shortcut_skips_tests(self):
        """Same-cell pairs are emitted with ZERO intersection tests."""
        # All boxes are large and tightly clustered: every centre lands in
        # the same (sub-minimum-extent) cell, so every pair is a same-cell
        # pair and the 'intersect by definition' shortcut applies.
        rng = np.random.default_rng(9)
        items = []
        for eid in range(40):
            lo = rng.uniform(0, 0.5, 3)
            items.append((eid, AABB(lo, lo + 5.0)))
        counters = Counters()
        pairs = tiny_cell_self_join(items, counters=counters)
        assert sorted(pairs) == sorted(nested_loop_self_join(items))
        assert len(pairs) == (40 * 39) // 2
        assert counters.comparisons == 0

    def test_tiny_cell_with_point_elements_falls_back(self):
        rng = np.random.default_rng(10)
        items = [(eid, AABB.from_point(rng.uniform(0, 5, 3))) for eid in range(40)]
        assert sorted(tiny_cell_self_join(items)) == sorted(nested_loop_self_join(items))

    def test_tiny_cell_explicit_cell_size(self):
        items = uniform_boxes(100, UNIVERSE_3D, 1.0, 4.0, seed=11)
        got = tiny_cell_self_join(items, cell_size=2.0)
        assert sorted(got) == sorted(nested_loop_self_join(items))


class TestDistanceJoin:
    def test_distance_join_filters_and_refines(self):
        a = uniform_boxes(60, UNIVERSE_3D, 0.5, 2.0, seed=12)
        b = [(eid + 10_000, box) for eid, box in uniform_boxes(60, UNIVERSE_3D, 0.5, 2.0, seed=13)]
        boxes = dict(a) | dict(b)

        def refine(eid_a, eid_b):
            return boxes[eid_a].min_distance_to_box(boxes[eid_b]) <= 3.0

        got = sorted(distance_join(a, b, epsilon=3.0, refine=refine))
        expected = sorted(
            (ea, eb)
            for ea, ba in a
            for eb, bb in b
            if ba.min_distance_to_box(bb) <= 3.0
        )
        assert got == expected

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            distance_join([], [], epsilon=-1.0, refine=lambda a, b: True)


class TestSynapseDetector:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_neurons(neurons=12, segments_per_neuron=25, seed=14)

    def test_matches_bruteforce(self, dataset):
        epsilon = 0.25
        detector = SynapseDetector(dataset, epsilon=epsilon)
        got = {(s.segment_a, s.segment_b) for s in detector.detect()}
        expected = set()
        ids = list(dataset.capsules)
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                a, b = ids[i], ids[j]
                if dataset.neuron_of[a] == dataset.neuron_of[b]:
                    continue
                if dataset.capsules[a].distance_to(dataset.capsules[b]) <= epsilon:
                    expected.add((min(a, b), max(a, b)))
        assert got == expected

    def test_excludes_same_neuron(self, dataset):
        for synapse in SynapseDetector(dataset, epsilon=0.3).detect():
            assert synapse.neuron_a != synapse.neuron_b

    def test_synapse_records_have_locations(self, dataset):
        for synapse in SynapseDetector(dataset, epsilon=0.3).detect():
            assert len(synapse.location) == 3
            assert synapse.gap <= 0.3

    def test_pluggable_join(self, dataset):
        default = {(s.segment_a, s.segment_b) for s in SynapseDetector(dataset, 0.2).detect()}
        via_grid = {
            (s.segment_a, s.segment_b)
            for s in SynapseDetector(dataset, 0.2).detect(box_join=grid_join)
        }
        assert default == via_grid
