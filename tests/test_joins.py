"""Legacy join surface: property tests and the deprecation shims.

The deep oracle suite for the subsystem lives in ``test_join_session.py``;
this file keeps the original property coverage running against the strategy
classes (random-seed hypothesis sweeps, the tiny-cell shortcut, comparison
budgets) and pins that every pre-session free function still answers
correctly — through a ``DeprecationWarning``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.points import clustered_boxes, uniform_boxes
from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.joins import (
    grid_join,
    nested_loop_join,
    nested_loop_self_join,
    pbsm_join,
    sweepline_join,
    tiny_cell_self_join,
    touch_join,
)
from repro.joins.strategies import (
    GridJoin,
    NestedLoopJoin,
    PBSMJoin,
    SweeplineJoin,
    TinyCellJoin,
    TouchJoin,
    make_join_strategy,
)

from conftest import UNIVERSE_3D

ORACLE = NestedLoopJoin()
STRATEGIES = [SweeplineJoin, PBSMJoin, TouchJoin, GridJoin]


def _datasets(seed_a=1, seed_b=2, n_a=150, n_b=120):
    a = uniform_boxes(n_a, UNIVERSE_3D, 0.5, 5.0, seed=seed_a)
    b = [(eid + 10_000, box) for eid, box in uniform_boxes(n_b, UNIVERSE_3D, 0.5, 5.0, seed=seed_b)]
    return a, b


class TestBinaryJoins:
    @pytest.mark.parametrize("strategy_cls", STRATEGIES)
    def test_matches_oracle_uniform(self, strategy_cls):
        a, b = _datasets()
        expected = sorted(ORACLE.join(a, b, Counters()))
        assert sorted(strategy_cls().join(a, b, Counters())) == expected

    @pytest.mark.parametrize("strategy_cls", STRATEGIES)
    def test_elongated_elements(self, strategy_cls):
        """Narrow elements (the Figure 4 shape) must not break dedup."""
        a = clustered_boxes(60, UNIVERSE_3D, elongation=20.0, seed=5)
        b = [(eid + 10_000, box) for eid, box in clustered_boxes(60, UNIVERSE_3D, elongation=20.0, seed=6)]
        expected = sorted(ORACLE.join(a, b, Counters()))
        assert sorted(strategy_cls().join(a, b, Counters())) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_property_random_seeds(self, seed_a, seed_b):
        a = uniform_boxes(40, UNIVERSE_3D, 0.5, 8.0, seed=seed_a)
        b = [(eid + 10_000, box) for eid, box in uniform_boxes(35, UNIVERSE_3D, 0.5, 8.0, seed=seed_b)]
        expected = sorted(ORACLE.join(a, b, Counters()))
        for strategy_cls in STRATEGIES:
            assert sorted(strategy_cls().join(a, b, Counters())) == expected

    def test_comparison_counts_below_nested_loop(self):
        a, b = _datasets(n_a=300, n_b=300)
        nested = Counters()
        ORACLE.join(a, b, nested)
        for name in ("pbsm", "grid"):
            counters = Counters()
            make_join_strategy(name).join(a, b, counters)
            assert counters.comparisons < nested.comparisons / 5


class TestSelfJoins:
    def test_self_join_id_ordering(self):
        items = uniform_boxes(80, UNIVERSE_3D, 1.0, 8.0, seed=7)
        pairs = ORACLE.self_join(items, Counters())
        assert all(a < b for a, b in pairs)

    def test_tiny_cell_matches_oracle(self):
        items = uniform_boxes(150, UNIVERSE_3D, 1.0, 4.0, seed=8)
        expected = sorted(ORACLE.self_join(items, Counters()))
        assert sorted(TinyCellJoin().self_join(items, Counters())) == expected

    def test_tiny_cell_shortcut_skips_tests(self):
        """Same-cell pairs are emitted with ZERO intersection tests."""
        # All boxes are large and tightly clustered: every centre lands in
        # the same (sub-minimum-extent) cell, so every pair is a same-cell
        # pair and the 'intersect by definition' shortcut applies.
        rng = np.random.default_rng(9)
        items = []
        for eid in range(40):
            lo = rng.uniform(0, 0.5, 3)
            items.append((eid, AABB(lo, lo + 5.0)))
        counters = Counters()
        pairs = TinyCellJoin().self_join(items, counters)
        assert sorted(pairs) == sorted(ORACLE.self_join(items, Counters()))
        assert len(pairs) == (40 * 39) // 2
        assert counters.comparisons == 0

    def test_tiny_cell_with_point_elements_falls_back(self):
        rng = np.random.default_rng(10)
        items = [(eid, AABB.from_point(rng.uniform(0, 5, 3))) for eid in range(40)]
        expected = sorted(ORACLE.self_join(items, Counters()))
        assert sorted(TinyCellJoin().self_join(items, Counters())) == expected

    def test_tiny_cell_explicit_cell_size(self):
        items = uniform_boxes(100, UNIVERSE_3D, 1.0, 4.0, seed=11)
        got = TinyCellJoin(cell_size=2.0).self_join(items, Counters())
        assert sorted(got) == sorted(ORACLE.self_join(items, Counters()))


class TestDeprecatedShims:
    """Every pre-session free function warns and still answers exactly."""

    def test_binary_shims_warn_and_match(self):
        a, b = _datasets(n_a=60, n_b=50)
        expected = sorted(ORACLE.join(a, b, Counters()))
        for shim in (nested_loop_join, sweepline_join, pbsm_join, touch_join, grid_join):
            with pytest.deprecated_call():
                got = shim(a, b)
            assert sorted(got) == expected, shim.__name__

    def test_self_shims_warn_and_match(self):
        items = uniform_boxes(80, UNIVERSE_3D, 1.0, 6.0, seed=12)
        expected = sorted(ORACLE.self_join(items, Counters()))
        with pytest.deprecated_call():
            assert sorted(nested_loop_self_join(items)) == expected
        with pytest.deprecated_call():
            assert sorted(tiny_cell_self_join(items)) == expected

    def test_distance_join_shim(self):
        from repro.joins import distance_join

        a = uniform_boxes(60, UNIVERSE_3D, 0.5, 2.0, seed=12)
        b = [(eid + 10_000, box) for eid, box in uniform_boxes(60, UNIVERSE_3D, 0.5, 2.0, seed=13)]
        boxes = dict(a) | dict(b)

        def refine(eid_a, eid_b):
            return boxes[eid_a].min_distance_to_box(boxes[eid_b]) <= 3.0

        with pytest.deprecated_call():
            got = sorted(distance_join(a, b, epsilon=3.0, refine=refine))
        expected = sorted(
            (ea, eb)
            for ea, ba in a
            for eb, bb in b
            if ba.min_distance_to_box(bb) <= 3.0
        )
        assert got == expected

    def test_distance_join_shim_rejects_negative_epsilon(self):
        from repro.joins import distance_join

        with pytest.raises(ValueError), pytest.deprecated_call():
            distance_join([], [], epsilon=-1.0, refine=lambda a, b: True)

    def test_shims_count_comparisons(self):
        a, b = _datasets(n_a=80, n_b=80)
        counters = Counters()
        with pytest.deprecated_call():
            pbsm_join(a, b, counters=counters)
        assert counters.comparisons > 0
