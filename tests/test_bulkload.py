"""STR bulk-loading properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.indexes.bulkload import str_pack
from repro.indexes.rtree import Node

from conftest import make_items


def _collect(root):
    """(item ids, max entries seen, leaf count) of a packed tree."""
    ids = []
    max_fill = 0
    leaves = 0
    stack = [root]
    while stack:
        node = stack.pop()
        max_fill = max(max_fill, len(node.entries))
        if node.is_leaf:
            leaves += 1
            ids.extend(ref for _, ref in node.entries)
        else:
            stack.extend(child for _, child in node.entries)
    return ids, max_fill, leaves


class TestStrPack:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            str_pack([], 8, Node)

    def test_rejects_capacity_one(self):
        with pytest.raises(ValueError):
            str_pack(make_items(5), 1, Node)

    def test_single_item(self):
        root, height, count = str_pack(make_items(1), 8, Node)
        assert height == 1
        assert count == 1
        assert root.is_leaf

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 400), capacity=st.integers(2, 32), seed=st.integers(0, 99))
    def test_preserves_items_and_respects_capacity(self, n, capacity, seed):
        items = make_items(n, seed=seed)
        root, height, count = str_pack(items, capacity, Node)
        ids, max_fill, leaves = _collect(root)
        assert sorted(ids) == sorted(eid for eid, _ in items)
        assert max_fill <= capacity
        assert height >= 1
        assert leaves <= count

    def test_parent_boxes_cover_children(self):
        items = make_items(200, seed=4)
        root, _, _ = str_pack(items, 8, Node)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for entry_box, child in node.entries:
                assert entry_box.contains_box(child.mbr())
                stack.append(child)

    def test_near_minimal_height(self):
        """STR packs nodes full: height must be close to log_M(n)."""
        import math

        items = make_items(1000, seed=5)
        capacity = 10
        _, height, _ = str_pack(items, capacity, Node)
        minimal = math.ceil(math.log(1000, capacity))
        assert height <= minimal + 1
