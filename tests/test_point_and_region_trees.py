"""KD-tree, quadtree/octree (replication) and loose octree."""

import time

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.indexes.kdtree import KDTree
from repro.indexes.loose_octree import LooseOctree
from repro.indexes.octree import Octree
from repro.indexes.quadtree import QuadTree

from conftest import (
    UNIVERSE_2D,
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)


class TestKDTree:
    def test_points_only(self):
        tree = KDTree()
        with pytest.raises(ValueError, match="point access method"):
            tree.insert(1, AABB((0, 0, 0), (1, 1, 1)))

    def test_range_matches_oracle(self):
        items = make_items(500, seed=3, points=True)
        tree = KDTree(bucket_size=8)
        tree.bulk_load(items)
        assert_same_range_results(tree, items, make_queries(10, seed=4))

    def test_knn_matches_oracle(self):
        items = make_items(500, seed=3, points=True)
        tree = KDTree(bucket_size=8)
        tree.bulk_load(items)
        assert_same_knn(tree, items, [(50, 50, 50), (5, 95, 5)], k=10)

    def test_dynamic_insert_delete(self):
        items = make_items(300, seed=5, points=True)
        tree = KDTree(bucket_size=8)
        live = {}
        for eid, box in items:
            tree.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::2]:
            tree.delete(eid, live.pop(eid))
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), make_queries(8, seed=6))

    def test_delete_missing(self):
        tree = KDTree()
        tree.insert(1, AABB((1, 1, 1), (1, 1, 1)))
        with pytest.raises(KeyError):
            tree.delete(2, AABB((1, 1, 1), (1, 1, 1)))

    def test_duplicate_coordinates(self):
        """All-equal points must not infinitely split."""
        box = AABB((5, 5, 5), (5, 5, 5))
        tree = KDTree(bucket_size=4)
        for eid in range(20):
            tree.insert(eid, box)
        assert sorted(tree.range_query(AABB((4, 4, 4), (6, 6, 6)))) == list(range(20))


class TestRegionTrees:
    def test_quadtree_oracle(self):
        items = make_items(400, universe=UNIVERSE_2D, seed=8)
        tree = QuadTree(universe=UNIVERSE_2D, capacity=12)
        tree.bulk_load(items)
        assert_same_range_results(tree, items, make_queries(10, UNIVERSE_2D, seed=9))

    def test_octree_oracle(self, items_3d, queries_3d):
        tree = Octree(universe=UNIVERSE_3D, capacity=12)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_octree_knn(self, items_3d):
        tree = Octree(universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(40, 40, 40)], k=6)

    def test_replication_reported(self, items_3d):
        tree = Octree(universe=UNIVERSE_3D, capacity=4, max_depth=8)
        tree.bulk_load(items_3d)
        assert tree.replication_factor >= 1.0

    def test_out_of_universe_insert_grows(self):
        tree = Octree(universe=AABB((0, 0, 0), (10, 10, 10)))
        inside = AABB((1, 1, 1), (2, 2, 2))
        outside = AABB((50, 50, 50), (51, 51, 51))
        tree.insert(1, inside)
        tree.insert(2, outside)
        assert sorted(tree.range_query(AABB((0, 0, 0), (100, 100, 100)))) == [1, 2]

    def test_delete_and_query(self, items_3d, queries_3d):
        tree = Octree(universe=UNIVERSE_3D, capacity=8)
        tree.bulk_load(items_3d)
        live = dict(items_3d)
        for eid in list(live)[::5]:
            tree.delete(eid, live.pop(eid))
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_dims_validation(self):
        tree = QuadTree(universe=UNIVERSE_2D)
        with pytest.raises(ValueError):
            tree.insert(1, AABB((0, 0, 0), (1, 1, 1)))


class TestLooseOctree:
    def test_oracle(self, items_3d, queries_3d):
        tree = LooseOctree(universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_no_replication(self, items_3d):
        tree = LooseOctree(universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        stored = sum(len(bucket) for bucket in tree._cells.values())
        assert stored == len(items_3d)

    def test_knn(self, items_3d):
        tree = LooseOctree(universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(60, 20, 80)], k=5)

    def test_in_cell_update_is_cheap(self):
        tree = LooseOctree(universe=UNIVERSE_3D)
        box = AABB((50, 50, 50), (51, 51, 51))
        tree.insert(1, box)
        cells_before = dict(tree._cells)
        nudged = AABB((50.01, 50.01, 50.01), (51.01, 51.01, 51.01))
        tree.update(1, box, nudged)
        assert set(tree._cells) == set(cells_before)  # same cell, no move

    def test_update_across_cells(self):
        tree = LooseOctree(universe=UNIVERSE_3D)
        box = AABB((1, 1, 1), (2, 2, 2))
        far = AABB((90, 90, 90), (91, 91, 91))
        tree.insert(1, box)
        tree.update(1, box, far)
        assert tree.range_query(AABB((89, 89, 89), (92, 92, 92))) == [1]
        assert tree.range_query(AABB((0, 0, 0), (3, 3, 3))) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LooseOctree(looseness=0.5)
        with pytest.raises(ValueError):
            LooseOctree(max_level=-1)

    def test_degenerate_universe_huge_query_terminates(self):
        """Regression: a query box vastly larger than a single-point-derived
        universe used to enumerate the full 2^(level*dims) cell window
        (billions of empty cells — an effective hang).  The window must
        clamp to occupied cells, as UniformGrid._coord does."""
        tree = LooseOctree()  # universe derived from the data: degenerate
        tree.bulk_load([(0, AABB.from_point((5.0, 5.0, 5.0)))])
        start = time.perf_counter()
        hits = tree.range_query(AABB((-1e9, -1e9, -1e9), (1e9, 1e9, 1e9)))
        elapsed = time.perf_counter() - start
        assert hits == [0]
        assert elapsed < 1.0  # was minutes before the occupied-cell clamp
        # The probe count is bounded by the population, not the window.
        assert tree.counters.cells_probed <= tree.cell_count + 1

    def test_degenerate_universe_queries_stay_exact(self):
        """The occupied-cell path must answer exactly like the window path."""
        rng = np.random.default_rng(31)
        items = [(eid, AABB.from_point(rng.uniform(0, 1e-6, 3))) for eid in range(50)]
        tree = LooseOctree()
        tree.bulk_load(items)
        assert sorted(tree.range_query(AABB((-1e3,) * 3, (1e3,) * 3))) == list(range(50))
        assert tree.range_query(AABB((1.0,) * 3, (2.0,) * 3)) == []
        for eid in range(0, 50, 2):
            tree.delete(eid, items[eid][1])
        assert sorted(tree.range_query(AABB((-1e3,) * 3, (1e3,) * 3))) == list(range(1, 50, 2))
