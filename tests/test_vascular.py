"""Arterial-tree generator: Murray's law, size distribution, indexability."""

import numpy as np
import pytest

from repro.core.multires_grid import MultiResolutionGrid
from repro.datasets.vascular import generate_arterial_tree
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan


@pytest.fixture(scope="module")
def tree():
    return generate_arterial_tree(root_radius=1.0, min_radius=0.15, seed=3)


class TestGeneration:
    def test_nonempty_and_terminates(self, tree):
        assert len(tree) > 100
        radii = [c.radius for c in tree.capsules.values()]
        assert min(radii) >= 0.15 * 0.7  # Murray shrink below threshold stops

    def test_heavy_tailed_sizes(self, tree):
        """Few thick trunk vessels, many thin arterioles."""
        radii = np.array([c.radius for c in tree.capsules.values()])
        assert (radii > 0.7).sum() < 0.05 * len(radii)
        assert (radii < 0.3).sum() > 0.5 * len(radii)

    def test_generations_increase(self, tree):
        assert max(tree.neuron_of.values()) >= 3

    def test_segments_elongated(self, tree):
        capsules = list(tree.capsules.values())
        elongated = sum(1 for c in capsules if c.length() > c.radius)
        # Corner-trapped vessels may stay short; the population is elongated.
        assert elongated >= 0.95 * len(capsules)

    def test_inside_universe(self, tree):
        hull = tree.universe.expanded(1e-6)
        for _, box in tree.items:
            assert hull.contains_box(box)

    def test_deterministic(self):
        a = generate_arterial_tree(root_radius=0.8, min_radius=0.2, seed=5)
        b = generate_arterial_tree(root_radius=0.8, min_radius=0.2, seed=5)
        assert len(a) == len(b)
        assert a.items == b.items

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_arterial_tree(root_radius=1.0, min_radius=2.0)
        with pytest.raises(ValueError):
            generate_arterial_tree(asymmetry=0.0)


class TestMurraysLaw:
    def test_daughter_radii_follow_cube_law(self):
        """r_major³ + r_minor³ ≈ r_parent³ for the generator's constants."""
        asymmetry = 0.8
        parent = 1.0
        major = parent / (1.0 + asymmetry**3) ** (1.0 / 3.0)
        minor = major * asymmetry
        assert major**3 + minor**3 == pytest.approx(parent**3)


class TestIndexability:
    def test_multires_grid_spreads_levels(self, tree):
        grid = MultiResolutionGrid(universe=tree.universe, levels=4)
        grid.bulk_load(tree.items)
        populated = [p for p in grid.level_populations() if p > 0]
        assert len(populated) >= 2  # mixed sizes occupy several levels

    def test_queries_match_oracle(self, tree):
        grid = MultiResolutionGrid(universe=tree.universe)
        grid.bulk_load(tree.items)
        oracle = LinearScan()
        oracle.bulk_load(tree.items)
        rng = np.random.default_rng(6)
        lo = np.asarray(tree.universe.lo)
        hi = np.asarray(tree.universe.hi)
        for _ in range(8):
            start = rng.uniform(lo, hi)
            query = AABB(start, np.minimum(start + 6.0, hi))
            assert sorted(grid.range_query(query)) == sorted(oracle.range_query(query))
