"""Direct correctness of the legacy moving-object structures under churn.

``test_moving_objects.py`` drives pure motion; the continuous tier leans on
these structures for *mixed* update sequences — moves, inserts and deletes
interleaved — so this suite pins each one against the LinearScan brute force
under randomized op sequences, plus the TPR family's signature time-slice
query (a conservative superset of the true future answer).
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.moving.bottom_up import BottomUpRTree
from repro.moving.buffered_rtree import BufferedRTree
from repro.moving.lur_tree import LURTree
from repro.moving.tpr import TPRIndex

from conftest import (
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)

pytestmark = pytest.mark.continuous


def _clamped(lo, extent, universe=UNIVERSE_3D) -> AABB:
    lo = [min(max(c, u), h - e) for c, u, h, e in zip(lo, universe.lo, universe.hi, extent)]
    return AABB(lo, [c + e for c, e in zip(lo, extent)])


def _random_box(rng: random.Random, max_extent: float = 3.0) -> AABB:
    extent = [rng.uniform(0.1, max_extent) for _ in range(3)]
    lo = [rng.uniform(l, h) for l, h in zip(UNIVERSE_3D.lo, UNIVERSE_3D.hi)]
    return _clamped(lo, extent)


def _moved(box: AABB, rng: random.Random, sigma: float) -> AABB:
    extent = [h - l for l, h in zip(box.lo, box.hi)]
    lo = [l + rng.uniform(-sigma, sigma) for l in box.lo]
    return _clamped(lo, extent)


def run_random_ops(
    index,
    live: dict[int, AABB],
    rng: random.Random,
    steps: int = 60,
    move_sigma: float = 1.5,
    teleport_every: int = 7,
    churn_every: int = 4,
):
    """Interleave moves, teleports, inserts and deletes, mirroring every op
    into ``live`` (the brute-force state).  Yields after every op batch so
    callers can interpose oracle checks."""
    next_eid = max(live, default=-1) + 1
    for step in range(steps):
        if live and step % churn_every == 1:
            eid = rng.choice(sorted(live))
            index.delete(eid, live.pop(eid))
        if step % churn_every == 2:
            box = _random_box(rng)
            index.insert(next_eid, box)
            live[next_eid] = box
            next_eid += 1
        if live:
            k = min(len(live), 5)
            for eid in rng.sample(sorted(live), k=k):
                old = live[eid]
                if step % teleport_every == teleport_every - 1:
                    new = _random_box(rng)
                else:
                    new = _moved(old, rng, move_sigma)
                index.update(eid, old, new)
                live[eid] = new
        yield step


QUERIES = make_queries(8, seed=23)
POINTS = [(20.0, 20.0, 20.0), (50.0, 50.0, 50.0), (80.0, 30.0, 60.0)]


def check_exact(index, live: dict[int, AABB]) -> None:
    items = sorted(live.items())
    assert_same_range_results(index, items, QUERIES)
    assert_same_knn(index, items, POINTS, k=5)
    assert len(index) == len(live)


STRUCTURES = {
    "lur": lambda: LURTree(grace=0.5),
    "lur-loose": lambda: LURTree(grace=3.0),
    "buffered": lambda: BufferedRTree(buffer_capacity=40),
    "buffered-lazy": lambda: BufferedRTree(buffer_capacity=10_000),
    "bottom-up": lambda: BottomUpRTree(max_entries=8, refresh_fraction=0.05),
    "tpr": lambda: TPRIndex(max_speed=0.5, horizon=6),
}


class TestRandomOpSequences:
    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_exact_under_mixed_churn(self, name):
        index = STRUCTURES[name]()
        live = dict(make_items(150, seed=51))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(name)
        for step in run_random_ops(index, live, rng):
            if step % 15 == 14:
                check_exact(index, live)
        check_exact(index, live)

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_exact_from_empty(self, name):
        """Structures must also grow from nothing — the insert path builds
        the tree the bulk loader normally would."""
        index = STRUCTURES[name]()
        index.bulk_load([])
        live: dict[int, AABB] = {}
        rng = random.Random(f"{name}-empty")
        for _ in run_random_ops(index, live, rng, steps=30, churn_every=2):
            pass
        check_exact(index, live)

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_delete_to_empty(self, name):
        index = STRUCTURES[name]()
        live = dict(make_items(40, seed=52))
        index.bulk_load(sorted(live.items()))
        for eid in sorted(live):
            index.delete(eid, live.pop(eid))
        assert len(index) == 0
        for query in QUERIES:
            assert index.range_query(query) == []


class TestLURLazyUpdates:
    def test_lazy_state_never_visible(self):
        """Queries between lazy updates must refine to exact answers — the
        grace box is an implementation detail, never an answer."""
        index = LURTree(grace=2.0)
        live = dict(make_items(120, seed=53))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(6)
        for step in run_random_ops(index, live, rng, steps=40, move_sigma=0.4):
            if step % 5 == 0:
                check_exact(index, live)
        assert index.lazy_updates > index.structural_updates

    def test_delete_after_lazy_move(self):
        """A lazily-moved element must still be deletable by its *current*
        box (the caller's view), not the stale grace box."""
        index = LURTree(grace=5.0)
        box = AABB((10, 10, 10), (11, 11, 11))
        index.bulk_load([(1, box)])
        moved = AABB((12, 12, 12), (13, 13, 13))
        index.update(1, box, moved)
        assert index.lazy_updates == 1
        index.delete(1, moved)
        assert len(index) == 0


class TestBufferedFlush:
    def test_flush_preserves_answers(self):
        index = BufferedRTree(buffer_capacity=10_000)
        live = dict(make_items(120, seed=54))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(7)
        for _ in run_random_ops(index, live, rng, steps=25):
            pass
        assert index.pending_operations > 0
        before = {q: sorted(index.range_query(q)) for q in QUERIES}
        index.flush()
        assert index.pending_operations == 0
        for q in QUERIES:
            assert sorted(index.range_query(q)) == before[q]
        check_exact(index, live)

    def test_capacity_flushes_mid_sequence(self):
        index = BufferedRTree(buffer_capacity=16)
        live = dict(make_items(120, seed=55))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(8)
        for step in run_random_ops(index, live, rng, steps=40):
            if step % 10 == 9:
                check_exact(index, live)
        assert index.flushes > 0


class TestBottomUpReinsertion:
    def test_both_paths_exercised_and_exact(self):
        """Small moves patch leaves in place; teleports take the classic
        delete+insert detour — both must stay exact, including through the
        wholesale map refresh the escape counter triggers."""
        index = BottomUpRTree(max_entries=8, refresh_fraction=0.02)
        live = dict(make_items(200, seed=56))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(9)
        for step in run_random_ops(
            index, live, rng, steps=50, move_sigma=0.3, teleport_every=3
        ):
            if step % 12 == 11:
                check_exact(index, live)
        assert index.in_place_updates > 0
        assert index.structural_updates > 0
        check_exact(index, live)

    def test_stale_map_detour_never_loses_elements(self):
        """Splits from inserts relocate mapped entries; the verified fast
        path must detect the stale pointer and fall back, not drop the
        element or patch a detached leaf."""
        index = BottomUpRTree(max_entries=4, refresh_fraction=1.0)
        live = dict(make_items(30, seed=57))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(10)
        next_eid = max(live) + 1
        for _ in range(40):  # force many splits without a map refresh
            box = _random_box(rng)
            index.insert(next_eid, box)
            live[next_eid] = box
            next_eid += 1
        for eid in sorted(live):
            old = live[eid]
            new = _moved(old, rng, 0.5)
            index.update(eid, old, new)
            live[eid] = new
        check_exact(index, live)

    def test_refresh_map_restores_fast_path(self):
        index = BottomUpRTree(max_entries=4, refresh_fraction=1.0)
        live = dict(make_items(50, seed=58))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(11)
        next_eid = max(live) + 1
        for _ in range(30):
            box = _random_box(rng)
            index.insert(next_eid, box)
            live[next_eid] = box
            next_eid += 1
        index.refresh_map()
        before = index.in_place_updates
        for eid in sorted(live)[:20]:
            old = live[eid]
            new = _moved(old, rng, 0.01)  # tiny: stays inside the leaf MBR
            index.update(eid, old, new)
            live[eid] = new
        assert index.in_place_updates > before
        check_exact(index, live)


class TestTPRTimeSlice:
    def _bounded_motion(self, live, rng, max_speed):
        """One tick of center displacement bounded by ``max_speed`` per axis,
        extents frozen — the regime where TPR predictions are conservative."""
        moves = []
        for eid in sorted(live):
            old = live[eid]
            extent = [h - l for l, h in zip(old.lo, old.hi)]
            lo = [l + rng.uniform(-max_speed, max_speed) for l in old.lo]
            new = _clamped(lo, extent)
            moves.append((eid, old, new))
        return moves

    def test_now_slice_is_range_query(self):
        index = TPRIndex(max_speed=0.4, horizon=5)
        items = make_items(100, seed=59)
        index.bulk_load(items)
        box = AABB((20, 20, 20), (60, 60, 60))
        assert index.time_slice_query(box, index.now) == index.range_query(box)

    def test_past_slice_raises(self):
        index = TPRIndex()
        index.bulk_load(make_items(10, seed=60))
        index.advance([])
        with pytest.raises(ValueError):
            index.time_slice_query(AABB((0, 0, 0), (1, 1, 1)), 0)

    @pytest.mark.parametrize("lookahead", [1, 3, 6])
    def test_future_slice_is_conservative_superset(self, lookahead):
        """Under speed-bounded motion, the predicted answer at t+Δ must
        contain every element that truly intersects the box at t+Δ."""
        max_speed = 0.5
        index = TPRIndex(max_speed=max_speed, horizon=8)
        live = dict(make_items(150, seed=61, max_extent=2.0))
        index.bulk_load(sorted(live.items()))
        rng = random.Random(12)
        for _ in range(4):  # age some anchors so predictions are non-trivial
            moves = self._bounded_motion(live, rng, max_speed)
            index.advance(moves)
            for eid, _, new in moves:
                live[eid] = new

        box = AABB((30, 30, 30), (70, 70, 70))
        predicted = set(index.time_slice_query(box, index.now + lookahead))
        # Play the future: the same bounded motion for `lookahead` ticks.
        future = dict(live)
        for _ in range(lookahead):
            moves = self._bounded_motion(future, rng, max_speed)
            for eid, _, new in moves:
                future[eid] = new
        truth = {eid for eid, b in future.items() if b.intersects(box)}
        assert truth <= predicted

    def test_time_slice_counts_refines(self):
        index = TPRIndex(max_speed=0.2, horizon=4)
        index.bulk_load(make_items(50, seed=62))
        before = index.counters.snapshot()
        index.time_slice_query(AABB((10, 10, 10), (90, 90, 90)), index.now + 2)
        assert index.counters.diff(before).refine_tests >= len(index)
