"""The legacy free-function join surface: warn once, answer identically.

Every pre-session free function is a :class:`DeprecationWarning` shim over
the registry strategies.  The contract pinned here: each call emits exactly
one deprecation warning (pointing at ``JoinSession``), and the returned
pairs are identical to submitting the equivalent spec through the session.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.joins import (
    DistanceJoinSpec,
    JoinSession,
    PairJoinSpec,
    SelfJoinSpec,
    distance_join,
    grid_join,
    nested_loop_join,
    nested_loop_self_join,
    pbsm_join,
    sweepline_join,
    tiny_cell_self_join,
    touch_join,
)


def _boxes(n, seed, offset=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 18.0, size=(n, 3))
    hi = np.minimum(lo + rng.uniform(0.2, 2.0, size=(n, 3)), 20.0)
    return [(offset + eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]


ITEMS_A = _boxes(120, seed=1)
ITEMS_B = _boxes(110, seed=2, offset=10_000)


def _call_and_capture(fn, *args, **kwargs):
    """Run the shim, returning (result, deprecation warnings emitted)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


#: shim -> (args, equivalent (spec, strategy) for the session path).
BINARY_SHIMS = {
    nested_loop_join: "nested_loop",
    sweepline_join: "sweepline",
    pbsm_join: "pbsm",
    touch_join: "touch",
    grid_join: "grid",
}

SELF_SHIMS = {
    nested_loop_self_join: "nested_loop",
    tiny_cell_self_join: "tiny_cell",
}


class TestJoinShims:
    @pytest.mark.parametrize(
        "shim", sorted(BINARY_SHIMS, key=lambda fn: fn.__name__), ids=lambda fn: fn.__name__
    )
    def test_binary_shim_warns_once_and_matches_session(self, shim):
        result, deprecations = _call_and_capture(shim, ITEMS_A, ITEMS_B)
        assert len(deprecations) == 1, f"{shim.__name__} warned {len(deprecations)} times"
        message = str(deprecations[0].message)
        assert "deprecated" in message and "JoinSession" in message
        session_pairs = JoinSession().run(
            PairJoinSpec(ITEMS_A, ITEMS_B), strategy=BINARY_SHIMS[shim]
        )
        assert sorted(result) == session_pairs

    @pytest.mark.parametrize(
        "shim", sorted(SELF_SHIMS, key=lambda fn: fn.__name__), ids=lambda fn: fn.__name__
    )
    def test_self_shim_warns_once_and_matches_session(self, shim):
        result, deprecations = _call_and_capture(shim, ITEMS_A)
        assert len(deprecations) == 1
        assert "JoinSession" in str(deprecations[0].message)
        session_pairs = JoinSession().run(SelfJoinSpec(ITEMS_A), strategy=SELF_SHIMS[shim])
        assert sorted(result) == session_pairs

    def test_distance_join_shim_warns_once_and_matches_session(self):
        epsilon = 0.75

        def refine(a, b):
            return (a + b) % 3 != 0

        result, deprecations = _call_and_capture(
            distance_join, ITEMS_A, ITEMS_B, epsilon, refine
        )
        assert len(deprecations) == 1
        assert "JoinSession" in str(deprecations[0].message)
        session_pairs = JoinSession().run(
            DistanceJoinSpec(ITEMS_A, ITEMS_B, epsilon, refine), strategy="pbsm"
        )
        assert sorted(result) == session_pairs

    def test_every_shim_warns_on_every_call(self):
        # "once" means once *per call* — not once per process: a second call
        # must warn again (the shim uses a fresh stacklevel-3 warning).
        for _ in range(2):
            _, deprecations = _call_and_capture(nested_loop_join, ITEMS_A[:5], ITEMS_B[:5])
            assert len(deprecations) == 1
