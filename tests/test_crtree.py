"""CR-tree: quantization soundness and the cache-footprint advantage."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.aabb import AABB
from repro.indexes.crtree import CRTree, _quantize_box, _quantized_intersect
from repro.indexes.rtree import RTree

from conftest import assert_same_knn, assert_same_range_results, make_items, make_queries

coordinate = st.floats(0, 100, allow_nan=False)


def _box(values):
    lo = [min(a, b) for a, b in values]
    hi = [max(a, b) for a, b in values]
    return AABB(lo, hi)


box_strategy = st.lists(st.tuples(coordinate, coordinate), min_size=3, max_size=3).map(_box)


class TestQuantization:
    @given(box_strategy, box_strategy)
    def test_conservative_never_false_negative(self, entry, query):
        """Quantized overlap must be implied by real overlap (both outward)."""
        ref = entry.union(query)  # any ref covering both
        q_entry = _quantize_box(entry, ref, outward=True)
        q_query = _quantize_box(query, ref, outward=True)
        if entry.intersects(query):
            assert _quantized_intersect(*q_entry, *q_query)

    def test_degenerate_ref_axis(self):
        ref = AABB((0, 0, 0), (0, 10, 10))  # zero extent on axis 0
        qlo, qhi = _quantize_box(AABB((0, 1, 1), (0, 2, 2)), ref, outward=True)
        assert qlo[0] == 0  # degenerate axis quantizes to the full range


class TestCorrectness:
    def test_range_matches_oracle(self, items_3d, queries_3d):
        tree = CRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn_matches_oracle(self, items_3d):
        tree = CRTree(max_entries=16)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(12, 88, 45)], k=9)

    def test_dynamic_workload(self, queries_3d):
        items = make_items(300, seed=17)
        tree = CRTree(max_entries=8)
        live = {}
        for eid, box in items:
            tree.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::4]:
            tree.delete(eid, live.pop(eid))
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_delete_missing(self):
        tree = CRTree()
        with pytest.raises(KeyError):
            tree.delete(9, AABB((0, 0, 0), (1, 1, 1)))


class TestCacheFootprint:
    def test_queries_touch_fewer_bytes_than_rtree(self, items_3d):
        """The CR-tree's point: quantized nodes mean less memory traffic for
        the same traversal work."""
        queries = make_queries(20, extent=12.0, seed=5)
        crtree = CRTree(max_entries=16)
        crtree.bulk_load(items_3d)
        rtree = RTree(max_entries=16)
        rtree.bulk_load(items_3d)
        for query in queries:
            crtree.range_query(query)
            rtree.range_query(query)
        assert crtree.counters.bytes_touched < rtree.counters.bytes_touched

    def test_memory_bytes_smaller_than_rtree(self, items_3d):
        crtree = CRTree(max_entries=16)
        crtree.bulk_load(items_3d)
        rtree = RTree(max_entries=16)
        rtree.bulk_load(items_3d)
        assert crtree.memory_bytes() < rtree.memory_bytes()

    def test_refinement_counted(self, items_3d):
        tree = CRTree(max_entries=16)
        tree.bulk_load(items_3d)
        tree.range_query(AABB((20, 20, 20), (50, 50, 50)))
        assert tree.counters.refine_tests > 0
