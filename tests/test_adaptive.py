"""The adaptive simulation index: per-step strategy decisions."""

import pytest

from repro.core.adaptive import AdaptiveSimulationIndex
from repro.core.amortization import MaintenanceCosts, Strategy
from repro.datasets.trajectories import PlasticityMotion, apply_moves
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan

from conftest import UNIVERSE_3D, make_items, make_queries


def costs(update=1e-6, rebuild=1e-3, q_index=1e-5, q_scan=1e-3, n=400):
    return MaintenanceCosts(
        update_per_element=update,
        rebuild_fixed=rebuild,
        query_indexed=q_index,
        query_scan=q_scan,
        n_elements=n,
    )


def _moves(items, fraction, seed=0):
    motion = PlasticityMotion(universe=UNIVERSE_3D, moving_fraction=fraction, seed=seed)
    return motion.step(dict(items))


class TestStrategySelection:
    def test_small_change_updates(self, items_3d):
        index = AdaptiveSimulationIndex(UNIVERSE_3D, costs=costs(n=len(items_3d)))
        index.bulk_load(items_3d)
        strategy = index.step(_moves(items_3d, 0.05), expected_queries=500)
        assert strategy is Strategy.UPDATE

    def test_full_change_rebuilds(self, items_3d):
        # Make per-element updates expensive relative to a rebuild.
        index = AdaptiveSimulationIndex(
            UNIVERSE_3D, costs=costs(update=1e-4, rebuild=1e-3, n=len(items_3d))
        )
        index.bulk_load(items_3d)
        strategy = index.step(_moves(items_3d, 1.0), expected_queries=500)
        assert strategy is Strategy.REBUILD

    def test_no_queries_scans(self, items_3d):
        index = AdaptiveSimulationIndex(
            UNIVERSE_3D, costs=costs(update=1e-4, rebuild=1e-3, n=len(items_3d))
        )
        index.bulk_load(items_3d)
        strategy = index.step(_moves(items_3d, 1.0), expected_queries=0)
        assert strategy is Strategy.SCAN

    def test_without_costs_stays_incremental(self, items_3d):
        index = AdaptiveSimulationIndex(UNIVERSE_3D)
        index.bulk_load(items_3d)
        assert index.step(_moves(items_3d, 1.0), 10) is Strategy.UPDATE

    def test_history_recorded(self, items_3d):
        index = AdaptiveSimulationIndex(UNIVERSE_3D, costs=costs(n=len(items_3d)))
        index.bulk_load(items_3d)
        live = dict(items_3d)
        for seed in (0, 1):
            motion = PlasticityMotion(universe=UNIVERSE_3D, moving_fraction=0.05, seed=seed)
            moves = motion.step(live)
            index.step(moves, 500)
            apply_moves(live, moves)
        assert len(index.strategy_history) == 2


class TestCorrectnessAcrossStrategies:
    def test_queries_correct_after_every_strategy(self, items_3d, queries_3d):
        """Whatever the strategy, results must equal the oracle's."""
        index = AdaptiveSimulationIndex(
            UNIVERSE_3D, costs=costs(update=1e-4, rebuild=1e-3, n=len(items_3d))
        )
        index.bulk_load(items_3d)
        live = dict(items_3d)
        # Force the three regimes in sequence: scan, rebuild, update.
        for fraction, queries in ((1.0, 0), (1.0, 500), (0.02, 500)):
            motion = PlasticityMotion(
                universe=UNIVERSE_3D, moving_fraction=fraction, seed=int(fraction * 10)
            )
            moves = motion.step(live)
            index.step(moves, queries)
            apply_moves(live, moves)
            oracle = LinearScan()
            oracle.bulk_load(list(live.items()))
            for query in queries_3d[:4]:
                assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))

    def test_scan_then_update_refreshes_grid(self, items_3d):
        index = AdaptiveSimulationIndex(
            UNIVERSE_3D, costs=costs(update=1e-4, rebuild=1e-3, n=len(items_3d))
        )
        index.bulk_load(items_3d)
        live = dict(items_3d)
        moves = _moves(items_3d, 1.0)
        assert index.step(moves, 0) is Strategy.SCAN
        apply_moves(live, moves)
        motion = PlasticityMotion(universe=UNIVERSE_3D, moving_fraction=0.02, seed=3)
        second = motion.step(live)
        assert index.step(second, 500) is Strategy.UPDATE
        apply_moves(live, second)
        oracle = LinearScan()
        oracle.bulk_load(list(live.items()))
        query = AABB((20, 20, 20), (60, 60, 60))
        assert sorted(index.range_query(query)) == sorted(oracle.range_query(query))


class TestIndexSurface:
    def test_insert_delete_update(self):
        index = AdaptiveSimulationIndex(UNIVERSE_3D)
        box = AABB((1, 1, 1), (2, 2, 2))
        index.insert(1, box)
        assert len(index) == 1
        moved = AABB((5, 5, 5), (6, 6, 6))
        index.update(1, box, moved)
        assert index.range_query(AABB((4, 4, 4), (7, 7, 7))) == [1]
        index.delete(1, moved)
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.delete(1, moved)

    def test_knn(self, items_3d):
        index = AdaptiveSimulationIndex(UNIVERSE_3D)
        index.bulk_load(items_3d)
        oracle = LinearScan()
        oracle.bulk_load(items_3d)
        got = index.knn((50, 50, 50), 5)
        expected = oracle.knn((50, 50, 50), 5)
        assert [round(d, 9) for d, _ in got] == [round(d, 9) for d, _ in expected]
