"""The core package: uniform grid, multi-resolution grid, resolution model."""

import pytest

from repro.core.multires_grid import MultiResolutionGrid
from repro.core.resolution import GridCostModel, default_cell_size, optimal_cell_size
from repro.core.uniform_grid import UniformGrid
from repro.geometry.aabb import AABB

from conftest import (
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)


class TestUniformGrid:
    def test_oracle(self, items_3d, queries_3d):
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=5.0)
        grid.bulk_load(items_3d)
        assert_same_range_results(grid, items_3d, queries_3d)

    def test_knn(self, items_3d):
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=5.0)
        grid.bulk_load(items_3d)
        assert_same_knn(grid, items_3d, [(50, 50, 50), (0, 0, 0)], k=8)

    def test_no_tree_traversal(self, items_3d):
        """The paper's central claim: grids spend nothing on node tests."""
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=5.0)
        grid.bulk_load(items_3d)
        grid.range_query(AABB((10, 10, 10), (40, 40, 40)))
        assert grid.counters.node_tests == 0
        assert grid.counters.cells_probed > 0

    def test_in_place_update_fast_path(self):
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=10.0)
        box = AABB((5, 5, 5), (6, 6, 6))
        grid.bulk_load([(1, box)])
        nudged = AABB((5.1, 5.1, 5.1), (6.1, 6.1, 6.1))
        grid.update(1, box, nudged)
        assert grid.in_place_updates == 1
        assert grid.cell_switches == 0
        assert grid.range_query(AABB((5, 5, 5), (7, 7, 7))) == [1]

    def test_cell_switch_counted(self):
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=10.0)
        box = AABB((5, 5, 5), (6, 6, 6))
        far = AABB((85, 85, 85), (86, 86, 86))
        grid.bulk_load([(1, box)])
        grid.update(1, box, far)
        assert grid.cell_switches == 1
        assert grid.range_query(AABB((84, 84, 84), (87, 87, 87))) == [1]

    def test_small_motion_rarely_switches_cells(self):
        """§4.3: 'only few elements switch grid cell in every step'."""
        import numpy as np

        from repro.datasets.trajectories import PlasticityMotion, apply_moves

        items = make_items(500, seed=12, max_extent=0.5)
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=5.0)
        grid.bulk_load(items)
        live = dict(items)
        motion = PlasticityMotion(universe=UNIVERSE_3D, seed=13)
        for _ in range(3):
            moves = motion.step(live)
            for eid, old, new in moves:
                grid.update(eid, old, new)
            apply_moves(live, moves)
        switch_rate = grid.cell_switches / grid.counters.updates
        assert switch_rate < 0.1

    def test_update_wrong_box_raises(self):
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=5.0)
        box = AABB((1, 1, 1), (2, 2, 2))
        grid.bulk_load([(1, box)])
        with pytest.raises(KeyError):
            grid.update(1, AABB((0, 0, 0), (1, 1, 1)), box)

    def test_replication_factor(self, items_3d):
        fine = UniformGrid(universe=UNIVERSE_3D, cell_size=1.0)
        fine.bulk_load(items_3d)
        coarse = UniformGrid(universe=UNIVERSE_3D, cell_size=50.0)
        coarse.bulk_load(items_3d)
        assert fine.replication_factor > coarse.replication_factor
        assert coarse.replication_factor >= 1.0

    def test_out_of_universe_elements_still_found(self):
        grid = UniformGrid(universe=AABB((0, 0, 0), (10, 10, 10)), cell_size=2.0)
        outside = AABB((20, 20, 20), (21, 21, 21))
        grid.bulk_load([(1, outside)])
        assert grid.range_query(AABB((19, 19, 19), (22, 22, 22))) == [1]


class TestMultiResolutionGrid:
    def test_oracle_mixed_sizes(self, queries_3d):
        small = make_items(200, seed=1, max_extent=0.5)
        large = [
            (eid + 1000, box)
            for eid, box in make_items(50, seed=2, max_extent=30.0)
        ]
        items = small + large
        grid = MultiResolutionGrid(universe=UNIVERSE_3D, levels=4)
        grid.bulk_load(items)
        assert_same_range_results(grid, items, queries_3d)

    def test_levels_split_by_size(self):
        small = make_items(100, seed=1, max_extent=0.3)
        large = [(eid + 1000, box) for eid, box in make_items(100, seed=2, max_extent=40.0)]
        grid = MultiResolutionGrid(universe=UNIVERSE_3D, levels=4)
        grid.bulk_load(small + large)
        populations = grid.level_populations()
        assert sum(populations) == 200
        assert populations[0] > 0  # coarse level holds big elements
        assert populations[-1] > 0 or populations[-2] > 0  # fine levels hold small

    def test_replication_bounded(self):
        items = make_items(400, seed=3, max_extent=20.0)
        grid = MultiResolutionGrid(universe=UNIVERSE_3D, levels=5)
        grid.bulk_load(items)
        total_stored = sum(
            sum(len(cells) for cells in g._cells_of.values()) for g in grid._grids
        )
        assert total_stored / len(items) <= 8.0  # capped at 2^3 by level choice

    def test_knn(self, items_3d):
        grid = MultiResolutionGrid(universe=UNIVERSE_3D)
        grid.bulk_load(items_3d)
        assert_same_knn(grid, items_3d, [(33, 66, 50)], k=7)

    def test_update_level_migration(self):
        grid = MultiResolutionGrid(universe=UNIVERSE_3D, levels=4)
        small = AABB((10, 10, 10), (10.5, 10.5, 10.5))
        grid.bulk_load([(1, small)])
        big = AABB((10, 10, 10), (60, 60, 60))
        grid.update(1, small, big)
        assert grid.range_query(AABB((50, 50, 50), (55, 55, 55))) == [1]

    def test_dynamic(self, queries_3d):
        items = make_items(300, seed=4)
        grid = MultiResolutionGrid(universe=UNIVERSE_3D)
        live = {}
        for eid, box in items:
            grid.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::3]:
            grid.delete(eid, live.pop(eid))
        assert_same_range_results(grid, list(live.items()), queries_3d)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MultiResolutionGrid(levels=0)
        with pytest.raises(ValueError):
            MultiResolutionGrid(ratio=1.0)


class TestResolutionModel:
    def test_default_cell_size_scales_with_density(self):
        sparse = default_cell_size(100, UNIVERSE_3D)
        dense = default_cell_size(100_000, UNIVERSE_3D)
        assert dense < sparse

    def test_optimum_beats_extremes(self):
        model = GridCostModel(
            n=100_000,
            universe_extent=100.0,
            avg_element_extent=0.5,
            avg_query_extent=5.0,
        )
        best = model.optimal_cell_size()
        assert model.query_cost(best) <= model.query_cost(best * 16)
        assert model.query_cost(best) <= model.query_cost(best / 16)

    def test_bigger_queries_want_coarser_cells(self):
        small_queries = GridCostModel(
            n=50_000, universe_extent=100.0, avg_element_extent=0.5, avg_query_extent=1.0
        ).optimal_cell_size()
        big_queries = GridCostModel(
            n=50_000, universe_extent=100.0, avg_element_extent=0.5, avg_query_extent=20.0
        ).optimal_cell_size()
        assert big_queries > small_queries

    def test_wrapper(self):
        cell = optimal_cell_size(10_000, UNIVERSE_3D, 0.5, 5.0)
        assert 0 < cell < 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            default_cell_size(0, UNIVERSE_3D)
        model = GridCostModel(
            n=10, universe_extent=10.0, avg_element_extent=1.0, avg_query_extent=1.0
        )
        with pytest.raises(ValueError):
            model.query_cost(0.0)
