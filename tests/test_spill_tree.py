"""The approximate-kNN tier, pinned by the LinearScan oracle.

Two contracts coexist in one index:

* **exact tier** — :class:`~repro.approx.SpillTree` subclasses
  :class:`~repro.indexes.linear_scan.LinearScan`, so its scalar and batch
  kNN answers are *bit-identical* to the oracle's (same kernels, same
  ``(distance, id)`` tie-break) — compared without rounding;
* **approximate tier** — the defeatist descent returns well-formed ordered
  results whose recall against the oracle clears a floor for every split
  rule on every data shape, and degrades to *exactly* the exact answer when
  the overlap swallows the split (one hybrid root leaf).

The planner contract rides on top: ``accuracy='exact'`` (the default)
routes through the inherited exact kernels untouched, a float target routes
through the defeatist kernel only when the calibrated recall clears it.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import INDEX_REGISTRY, KNNQuery, QuerySession, UniformGrid
from repro.analysis import query_session_report
from repro.approx import (
    SpillTree,
    SPLIT_RULES,
    available_split_rules,
    make_split_rule,
)
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from tests.conftest import UNIVERSE_3D, make_items, recall

pytestmark = pytest.mark.approx

RULES = sorted(SPLIT_RULES)
SHAPES = ["uniform", "clustered", "degenerate"]


def shaped_items(shape: str, n: int = 1500, seed: int = 3, dims: int = 3):
    """Point datasets for the three shapes the issue names.

    ``degenerate`` is the split rules' stress case: every point sits on one
    line, so all but the dominant direction carry zero variance.
    """
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        pts = rng.uniform(0.0, 100.0, size=(n, dims))
    elif shape == "clustered":
        centers = rng.uniform(10.0, 90.0, size=(8, dims))
        pts = centers[rng.integers(0, len(centers), size=n)]
        pts = pts + rng.normal(0.0, 2.0, size=(n, dims))
        pts = np.clip(pts, 0.0, 100.0)
    elif shape == "degenerate":
        t = rng.uniform(0.0, 100.0, size=(n, 1))
        pts = np.repeat(t, dims, axis=1)  # the main diagonal
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise AssertionError(shape)
    return [(eid, AABB(p, p)) for eid, p in enumerate(pts.tolist())]


def query_points(count: int, seed: int, dims: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(count, dims))


def build(items, **kwargs) -> tuple[SpillTree, LinearScan]:
    tree = SpillTree(**kwargs)
    tree.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)
    return tree, oracle


# -- the oracle grid: every rule × every shape ----------------------------------


class TestOracleGrid:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("rule", RULES)
    def test_exact_tier_is_bit_identical(self, rule, shape):
        items = shaped_items(shape)
        tree, oracle = build(items, split_rule=rule, tau=0.2, leaf_size=32)
        pts = query_points(50, seed=5)
        # Batch vs batch and scalar vs scalar: same kernels as the oracle,
        # so no rounding is allowed in either comparison.
        assert tree.batch_knn(pts, 8) == oracle.batch_knn(pts, 8)
        for p in map(tuple, pts[:10]):
            assert tree.knn(p, 8) == oracle.knn(p, 8)

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("rule", RULES)
    def test_defeatist_recall_clears_floor(self, rule, shape):
        items = shaped_items(shape)
        tree, oracle = build(items, split_rule=rule, tau=0.25, leaf_size=48)
        # Data-correlated queries (stored points + jitter): the workload
        # approximate kNN exists for.  Far-from-everything probes are the
        # defeatist search's known blind spot and are pinned separately by
        # the planner's recall-aware fallback.
        rng = np.random.default_rng(6)
        data = np.asarray([box.lo for _, box in items], dtype=np.float64)
        pts = data[rng.integers(0, len(data), size=200)] + rng.normal(
            0.0, 1.0, size=(200, 3)
        )
        approx = tree.approx_batch_knn(pts, 8)
        exact = oracle.batch_knn(pts, 8)
        for row in approx:  # well-formed: ascending (distance, id), no dupes
            assert row == sorted(row)
            assert len({eid for _, eid in row}) == len(row)
        assert recall(exact, approx) >= 0.6
        assert tree.counters.approx_descents == len(pts)
        assert tree.counters.leaves_scanned > 0

    @pytest.mark.parametrize("rule", RULES)
    def test_saturated_overlap_degrades_to_exact(self, rule):
        # tau→1 stops the split from shrinking anything, so the build keeps
        # the whole population in one hybrid root leaf and the defeatist
        # sweep *is* the exact kernel.
        items = shaped_items("uniform", n=400)
        tree, oracle = build(items, split_rule=rule, tau=0.95, leaf_size=16)
        pts = query_points(40, seed=7)
        assert tree.leaves == 1
        assert tree.approx_batch_knn(pts, 6) == oracle.batch_knn(pts, 6)

    def test_scalar_approx_matches_batch_row(self):
        items = shaped_items("clustered")
        tree, _ = build(items, tau=0.2, leaf_size=32)
        pts = query_points(5, seed=8)
        batch = tree.approx_batch_knn(pts, 4)
        for p, row in zip(map(tuple, pts), batch):
            assert tree.approx_knn(p, 4) == row


# -- maintenance: the flat tree tracks mutations --------------------------------


class TestMaintenance:
    def test_mutations_invalidate_the_descent_structure(self):
        items = shaped_items("uniform", n=300)
        tree, oracle = build(items, tau=0.2, leaf_size=16)
        tree.approx_batch_knn(query_points(1, seed=9), 2)  # force the build
        target = (5000, AABB((50.0, 50.0, 50.0), (50.0, 50.0, 50.0)))
        tree.insert(*target)
        oracle.insert(*target)
        got = tree.approx_knn((50.0, 50.0, 50.0), 1)
        assert got == [(0.0, 5000)]  # the new point is find-able immediately
        tree.delete(*target)
        oracle.delete(*target)
        assert tree.approx_knn((50.0, 50.0, 50.0), 1) != [(0.0, 5000)]
        pts = query_points(30, seed=10)
        assert tree.batch_knn(pts, 5) == oracle.batch_knn(pts, 5)

    def test_rejects_volumetric_elements(self):
        tree = SpillTree()
        with pytest.raises(ValueError, match="point access method"):
            tree.insert(1, AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))
        with pytest.raises(ValueError, match="point access method"):
            tree.bulk_load([(1, AABB((0.0, 0.0, 0.0), (2.0, 0.0, 0.0)))])

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="tau"):
            SpillTree(tau=1.0)
        with pytest.raises(ValueError, match="tau"):
            SpillTree(tau=-0.1)
        with pytest.raises(ValueError, match="leaf_size"):
            SpillTree(leaf_size=0)
        with pytest.raises(KeyError, match="split rule"):
            SpillTree(split_rule="nope")


# -- calibration ----------------------------------------------------------------


class TestCalibration:
    def test_estimated_recall_is_cached_and_side_effect_free(self):
        items = shaped_items("uniform", n=800)
        tree, _ = build(items, tau=0.2, leaf_size=32)
        before = tree.counters.approx_descents
        first = tree.estimated_recall(8)
        assert 0.0 < first <= 1.0
        # Calibration probes run against throwaway counters.
        assert tree.counters.approx_descents == before
        assert tree.estimated_recall(8) is first  # cached per k
        tree.insert(9000, AABB((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)))
        assert 0.0 < tree.estimated_recall(8) <= 1.0  # cache invalidated, rebuilt


# -- split-rule registry --------------------------------------------------------


class TestSplitRules:
    def test_registry_surface(self):
        assert set(available_split_rules()) == set(SPLIT_RULES) >= {
            "kd",
            "rp",
            "pca",
            "two_means",
        }
        rule = make_split_rule("pca")
        assert make_split_rule(rule) is rule  # instances pass through
        with pytest.raises(KeyError, match="split rule"):
            make_split_rule("voronoi")

    @pytest.mark.parametrize("rule", RULES)
    def test_directions_are_unit_vectors(self, rule):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, 1.0, size=(200, 3))
        direction = make_split_rule(rule).direction(pts, rng)
        assert direction.shape == (3,)
        assert np.isclose(float(np.linalg.norm(direction)), 1.0)

    @pytest.mark.parametrize("rule", RULES)
    def test_identical_points_still_split_safely(self, rule):
        # Zero variance everywhere: the rules must return *some* unit
        # direction, and the build must terminate in a hybrid leaf.
        items = [(eid, AABB((5.0, 5.0, 5.0), (5.0, 5.0, 5.0))) for eid in range(40)]
        tree, oracle = build(items, split_rule=rule, tau=0.2, leaf_size=8)
        pts = query_points(5, seed=12)
        assert tree.approx_batch_knn(pts, 3) == oracle.batch_knn(pts, 3)


# -- planner routing ------------------------------------------------------------


class TestAccuracyRouting:
    def setup_sessions(self, n=1200, seed=21):
        items = shaped_items("clustered", n=n, seed=seed)
        tree, oracle = build(items, tau=0.25, leaf_size=48, seed=1)
        return tree, oracle, QuerySession(tree), QuerySession(oracle)

    def test_exact_accuracy_is_bit_identical_to_oracle_session(self):
        tree, _, session, oracle_session = self.setup_sessions()
        pts = [tuple(p) for p in query_points(300, seed=22)]
        got = session.knn(pts, 8)  # accuracy defaults to 'exact'
        want = oracle_session.knn(pts, 8)
        assert got == want
        assert session.stats.batch.approx_descents == 0

    def test_float_accuracy_routes_defeatist_and_records_telemetry(self):
        tree, _, session, _ = self.setup_sessions()
        pts = query_points(300, seed=23)
        expected = tree.approx_batch_knn(pts, 8)
        got = session.knn([tuple(p) for p in pts], 8, accuracy=0.5)
        assert got == expected
        stats = session.stats.batch
        assert stats.approx_descents == len(pts)
        assert stats.leaves_scanned > 0
        assert 0.0 < stats.recall_estimate <= 1.0
        assert "approx:" in query_session_report(session)

    def test_unreachable_target_falls_back_to_exact(self):
        tree, _, session, oracle_session = self.setup_sessions()
        pts = [tuple(p) for p in query_points(200, seed=24)]
        assert tree.estimated_recall(8) < 1.0  # the target below is unmeetable
        got = session.knn(pts, 8, accuracy=1.0)
        assert got == oracle_session.knn(pts, 8)
        assert session.stats.batch.approx_descents == 0

    def test_non_approx_index_ignores_accuracy(self):
        items = make_items(400, seed=25)
        grid = UniformGrid(universe=UNIVERSE_3D, cell_size=10.0)
        grid.bulk_load(items)
        oracle = LinearScan()
        oracle.bulk_load(items)
        session = QuerySession(grid)
        pts = [tuple(p) for p in query_points(100, seed=26)]
        got = session.knn(pts, 4, accuracy=0.5)
        assert got == QuerySession(oracle).knn(pts, 4)
        assert session.stats.batch.approx_descents == 0

    def test_deferred_handles_carry_accuracy(self):
        tree, _, session, _ = self.setup_sessions()
        pts = query_points(64, seed=27)
        expected = tree.approx_batch_knn(pts, 6)
        handles = [
            session.submit(KNNQuery(tuple(p), k=6, accuracy=0.5)) for p in pts
        ]
        session.flush()
        assert [h.result() for h in handles] == expected

    def test_mixed_accuracy_groups_stay_isolated(self):
        tree, oracle, session, _ = self.setup_sessions()
        pts = query_points(64, seed=28)
        exact_handles = [session.submit(KNNQuery(tuple(p), k=6)) for p in pts]
        approx_handles = [
            session.submit(KNNQuery(tuple(p), k=6, accuracy=0.5)) for p in pts
        ]
        session.flush()
        assert [h.result() for h in exact_handles] == oracle.batch_knn(pts, 6)
        assert [h.result() for h in approx_handles] == tree.approx_batch_knn(pts, 6)

    def test_accuracy_validation(self):
        for bad in (0.0, -0.5, 1.5, "mostly"):
            with pytest.raises(ValueError, match="accuracy"):
                KNNQuery((0.0, 0.0, 0.0), k=2, accuracy=bad)
        session = QuerySession(LinearScan())
        with pytest.raises(ValueError, match="accuracy"):
            session.knn([(0.0, 0.0, 0.0)], 2, accuracy=2.0)

    def test_registry_and_capability_probe(self):
        assert INDEX_REGISTRY["spill_tree"] is SpillTree
        assert SpillTree().supports_batch_kind("approx_knn")
        assert not LinearScan().supports_batch_kind("approx_knn")


# -- hypothesis: insert-then-query update programs ------------------------------


def _coord(draw):
    return float(draw(st.integers(min_value=0, max_value=20)))


@st.composite
def update_programs(draw):
    """Random mutate/query interleavings on a small integer grid (integer
    coordinates provoke distance ties, exercising the (distance, id)
    tie-break in both tiers)."""
    ops = []
    alive: set[int] = set()
    next_eid = 0
    for _ in range(draw(st.integers(min_value=3, max_value=25))):
        choice = draw(st.sampled_from(["insert", "insert", "delete", "query"]))
        if choice == "insert":
            point = tuple(_coord(draw) for _ in range(2))
            ops.append(("insert", next_eid, point))
            alive.add(next_eid)
            next_eid += 1
        elif choice == "delete" and alive:
            eid = draw(st.sampled_from(sorted(alive)))
            ops.append(("delete", eid, None))
            alive.discard(eid)
        else:
            point = tuple(_coord(draw) for _ in range(2))
            ops.append(("query", draw(st.integers(min_value=1, max_value=6)), point))
    return ops


class TestUpdatePrograms:
    @settings(max_examples=40)
    @given(program=update_programs(), rule=st.sampled_from(RULES))
    def test_program_stays_exact_and_well_formed(self, program, rule):
        tree = SpillTree(split_rule=rule, tau=0.3, leaf_size=4, seed=2)
        oracle = LinearScan()
        state: dict[int, tuple[float, ...]] = {}
        for op, arg, payload in program:
            if op == "insert":
                box = AABB(payload, payload)
                tree.insert(arg, box)
                oracle.insert(arg, box)
                state[arg] = payload
            elif op == "delete":
                box = AABB(state[arg], state[arg])
                tree.delete(arg, box)
                oracle.delete(arg, box)
                del state[arg]
            else:
                k, point = arg, payload
                assert tree.knn(point, k) == oracle.knn(point, k)
                if state:
                    approx = tree.approx_knn(point, k)
                    assert approx == sorted(approx)
                    assert {eid for _, eid in approx} <= set(state)
                    exact_ids = {eid for _, eid in oracle.knn(point, k)}
                    assert recall(oracle.knn(point, k), approx) >= 0.0
                    assert len(approx) <= min(k, len(state))
                    # Defeatist results are a subset of the truth whenever
                    # the tree degenerated to a single hybrid leaf.
                    if tree.leaves == 1:
                        assert {eid for _, eid in approx} == exact_ids
