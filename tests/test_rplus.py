"""R+-tree: the overlap-free invariant and oracle equivalence."""

import pytest

from repro.geometry.aabb import AABB
from repro.indexes.rplus import RPlusTree
from repro.indexes.rtree import RTree

from conftest import (
    UNIVERSE_3D,
    assert_same_knn,
    assert_same_range_results,
    make_items,
    make_queries,
)


class TestCorrectness:
    def test_range_matches_oracle(self, items_3d, queries_3d):
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert_same_range_results(tree, items_3d, queries_3d)

    def test_knn_matches_oracle(self, items_3d):
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert_same_knn(tree, items_3d, [(15, 75, 40), (90, 5, 60)], k=6)

    def test_dynamic_workload(self, queries_3d):
        items = make_items(400, seed=31)
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        live = {}
        for eid, box in items:
            tree.insert(eid, box)
            live[eid] = box
        for eid in list(live)[::3]:
            tree.delete(eid, live.pop(eid))
        assert len(tree) == len(live)
        assert_same_range_results(tree, list(live.items()), queries_3d)

    def test_out_of_universe_insert(self):
        tree = RPlusTree(universe=AABB((0, 0, 0), (10, 10, 10)))
        tree.insert(1, AABB((50, 50, 50), (51, 51, 51)))
        assert tree.range_query(AABB((49, 49, 49), (52, 52, 52))) == [1]

    def test_delete_missing(self):
        tree = RPlusTree(universe=UNIVERSE_3D)
        with pytest.raises(KeyError):
            tree.delete(1, AABB((0, 0, 0), (1, 1, 1)))

    def test_duplicate_insert_rejected(self):
        tree = RPlusTree(universe=UNIVERSE_3D)
        box = AABB((1, 1, 1), (2, 2, 2))
        tree.insert(1, box)
        with pytest.raises(ValueError):
            tree.insert(1, box)

    def test_identical_boxes_tolerated(self):
        """All-identical elements cannot be cut apart; oversized leaf."""
        box = AABB((5, 5, 5), (6, 6, 6))
        tree = RPlusTree(max_entries=4, universe=UNIVERSE_3D)
        tree.bulk_load([(i, box) for i in range(20)])
        assert sorted(tree.range_query(AABB((4, 4, 4), (7, 7, 7)))) == list(range(20))


class TestRPlusInvariants:
    def test_zero_sibling_overlap(self, items_3d):
        """The defining R+ property: sibling regions never overlap."""
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert tree.max_sibling_overlap() == 0.0

    def test_zero_overlap_survives_churn(self):
        items = make_items(300, seed=33)
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        tree.bulk_load(items)
        live = dict(items)
        for eid in list(live)[::2]:
            tree.delete(eid, live.pop(eid))
        for eid in range(1000, 1100):
            box = make_items(1, seed=eid)[0][1]
            tree.insert(eid, box)
            live[eid] = box
        assert tree.max_sibling_overlap() == 0.0

    def test_replication_reported(self, items_3d):
        tree = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        tree.bulk_load(items_3d)
        assert tree.replication_factor >= 1.0

    def test_overlap_vs_guttman_tradeoff(self, items_3d):
        """R+ pays replication to remove overlap; Guttman pays overlap to
        avoid replication — both measurable on the same data."""
        rplus = RPlusTree(max_entries=8, universe=UNIVERSE_3D)
        rplus.bulk_load(items_3d)
        rtree = RTree(max_entries=8)
        rtree.bulk_load(items_3d)
        assert rplus.max_sibling_overlap() == 0.0
        assert rplus.replication_factor > 1.0
