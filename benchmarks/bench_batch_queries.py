"""Per-query loop vs batched execution — the batch engine's reason to exist.

The paper's workloads are batch-shaped: "thousands of range queries need to
be executed between two simulation steps" (§2.2) and synapse detection probes
every neuron branch.  This bench builds the same uniform workload at
n=100k elements / m=10k queries and times three execution strategies on each
index:

* ``loop``   — one ``range_query`` call per query (the seed library's only
  option);
* ``batch``  — ``BatchQueryEngine.range_query`` over the whole array;

and asserts the claim the engine was built on: batched range queries on the
UniformGrid run at least 3× the per-query loop's throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_queries.py          # full scale
    PYTHONPATH=src python benchmarks/bench_batch_queries.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_batch_queries.py``),
where it runs at quick scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit, range_window_workload
from repro.analysis.reporting import format_table
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.engine import BatchQueryEngine
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000


def bench_index(name, index, items, queries, verify_sample=25, steady_rounds=3):
    """Times three regimes.

    ``first`` is a cold batch and includes any one-time dense packing an
    index performs; ``steady`` is the amortized regime of the paper's
    analysis phase — multiple query batches (visualization frames, monitors,
    probes) against an index that is not mutated between them.
    """
    index.bulk_load(items)
    engine = BatchQueryEngine.kernel(index, dedup=False)
    query_boxes = [AABB(q[0], q[1]) for q in queries]

    start = time.perf_counter()
    looped = [index.range_query(box) for box in query_boxes]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = engine.range_query(queries)
    first_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(steady_rounds):
        engine.range_query(queries)
    steady_seconds = (time.perf_counter() - start) / steady_rounds

    for i in np.linspace(0, len(query_boxes) - 1, verify_sample).astype(int):
        assert sorted(batched[i]) == sorted(looped[i]), f"{name}: mismatch on query {i}"

    m = len(query_boxes)
    return {
        "index": name,
        "loop qps": m / loop_seconds,
        "first qps": m / first_seconds,
        "steady qps": m / steady_seconds,
        "first speedup": loop_seconds / first_seconds,
        "steady speedup": loop_seconds / steady_seconds,
    }


def run(quick: bool = False) -> dict[str, float]:
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    items, queries = range_window_workload(n, m)
    contenders = {
        "LinearScan": LinearScan(),
        "UniformGrid": UniformGrid(universe=UNIVERSE),
        "Multi-res grid": MultiResolutionGrid(universe=UNIVERSE, levels=3),
        "R-tree": RTree(max_entries=16),
    }
    # The scan's per-query loop is O(n*m) pure Python (~7 min at full scale);
    # qps comparisons stay fair on a query subsample.
    query_cap = {"LinearScan": 1_000}
    rows = []
    speedups: dict[str, float] = {}
    for name, index in contenders.items():
        result = bench_index(name, index, items, queries[: query_cap.get(name, m)])
        speedups[name] = result["steady speedup"]
        rows.append(
            [
                name,
                f"{result['loop qps']:,.0f}",
                f"{result['first qps']:,.0f}",
                f"{result['steady qps']:,.0f}",
                f"{result['steady speedup']:.1f}x",
            ]
        )
    emit(
        f"Batched vs per-query range queries — n={n:,} elements, m={m:,} queries\n"
        "('first batch' pays any one-time dense packing; 'steady' is the\n"
        "paper's analysis regime: repeated batches on an unmutated index)\n"
        + format_table(
            ["index", "per-query qps", "first batch qps", "steady qps", "steady speedup"],
            rows,
        )
    )
    return speedups


def test_batch_beats_per_query_loop():
    """Quick-scale shape check for the benchmark harness run."""
    speedups = run(quick=True)
    assert speedups["UniformGrid"] > 1.0
    assert speedups["LinearScan"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    speedups = run(quick=args.quick)
    if not args.quick:
        # The acceptance bar: batching must buy >= 3x on the paper's primary
        # in-memory candidate at full scale.
        assert speedups["UniformGrid"] >= 3.0, (
            f"UniformGrid batch speedup {speedups['UniformGrid']:.1f}x < 3x"
        )
        print(f"OK: UniformGrid batched speedup {speedups['UniformGrid']:.1f}x (>= 3x)")


if __name__ == "__main__":
    main()
