"""Recall vs throughput for the defeatist spill-tree kNN — ISSUE 8's tentpole.

The approximate tier's bargain: one root-to-leaf sweep per query (no
backtracking) against an overlap-padded tree, trading a bounded recall loss
for an order of magnitude in throughput.  This bench sweeps the overlap
fraction ``tau`` and every registered split rule over a clustered
n=100k / m=10k point workload with data-correlated probes, measures recall
against the exact oracle, and times:

* ``exact scan``  — the inherited LinearScan dense kernel (the bit-exact
  oracle, and what ``accuracy='exact'`` routes to);
* ``exact grid``  — steady-state batched kNN on UniformGrid, the best
  exact contender of ``bench_batch_knn``;
* every ``(rule, tau)`` — the defeatist ``approx_batch_knn`` sweep.

The acceptance bar asserted at full scale: some swept configuration reaches
**recall >= 0.9** while beating the best exact batch contender by **>= 10x**.

Usage::

    PYTHONPATH=src python benchmarks/bench_spill_knn.py          # full scale
    PYTHONPATH=src python benchmarks/bench_spill_knn.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_spill_knn.py``),
where it runs at quick scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit
from repro.analysis.reporting import format_table
from repro.approx import SpillTree, available_split_rules
from repro.core.uniform_grid import UniformGrid
from repro.engine import BatchQueryEngine
from repro.geometry.aabb import AABB

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000
K = 8
TAUS = (0.05, 0.15, 0.25)


def clustered_point_workload(n: int, m: int, seed: int = 0):
    """Clustered points with data-correlated probes — the ANN regime.

    Probes sample the data distribution (stored point + small jitter):
    uniform far-from-everything probes are the defeatist descent's known
    blind spot and are the planner's fallback-to-exact case, not the
    throughput case this bench prices.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(5.0, 95.0, size=(max(8, n // 12_500), 3))
    pts = centers[rng.integers(0, len(centers), size=n)]
    pts = np.clip(pts + rng.normal(0.0, 3.0, size=(n, 3)), 0.0, 100.0)
    items = [(eid, AABB(p, p)) for eid, p in enumerate(pts.tolist())]
    probes = pts[rng.integers(0, n, size=m)] + rng.normal(0.0, 0.5, size=(m, 3))
    return items, np.clip(probes, 0.0, 100.0)


def _recall(exact, approx) -> float:
    hits = sum(
        len({e for _, e in want} & {e for _, e in got})
        for want, got in zip(exact, approx)
    )
    total = sum(len(want) for want in exact)
    return hits / total if total else 1.0


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(quick: bool = False):
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    items, probes = clustered_point_workload(n, m)

    # -- exact baselines --------------------------------------------------------
    # The dense scan is O(n*m): time it on a capped probe prefix (throughput
    # comparisons stay fair) so the full-scale run stays minutes-free.
    scan = SpillTree()  # the inherited LinearScan tier is the bit-exact tier
    scan.bulk_load(items)
    scan_cap = min(200, m)
    start = time.perf_counter()
    scan.batch_knn(probes[:scan_cap], K)
    scan_qps = scan_cap / (time.perf_counter() - start)

    grid = UniformGrid(universe=UNIVERSE)
    grid.bulk_load(items)
    engine = BatchQueryEngine.kernel(grid, dedup=False)
    # The recall oracle: exact ids from the grid's batch kernel (the same
    # (distance, id) contract every exact index answers), paying the
    # one-time snapshot packing before the timed rounds.
    exact = engine.knn(probes, K)
    grid_qps = m / _best_of(lambda: engine.knn(probes, K))
    best_exact_qps = max(scan_qps, grid_qps)

    # -- the (rule, tau) sweep --------------------------------------------------
    rows = [
        ["exact scan", "-", f"{scan_qps:,.0f}", "1.000", "-", "-"],
        ["exact grid", "-", f"{grid_qps:,.0f}", "1.000", "-", "-"],
    ]
    sweep = []
    for rule in available_split_rules():
        for tau in TAUS:
            tree = SpillTree(tau=tau, leaf_size=64, split_rule=rule, seed=0)
            tree.bulk_load(items)
            approx = tree.approx_batch_knn(probes, K)  # builds + warms
            recall = _recall(exact, approx)
            leaves0 = tree.counters.leaves_scanned
            seconds = _best_of(lambda: tree.approx_batch_knn(probes, K))
            leaves_per_query = (tree.counters.leaves_scanned - leaves0) / (3 * m)
            qps = m / seconds
            sweep.append({"rule": rule, "tau": tau, "recall": recall, "qps": qps})
            rows.append(
                [
                    rule,
                    f"{tau:.2f}",
                    f"{qps:,.0f}",
                    f"{recall:.3f}",
                    f"{qps / best_exact_qps:.1f}x",
                    f"{leaves_per_query:.2f}",
                ]
            )
    emit(
        f"Defeatist spill-tree kNN (k={K}) — n={n:,} clustered points, "
        f"m={m:,} correlated probes\n"
        "(speedup is against the best *exact* batch contender; leaves/query\n"
        "counts hybrid-leaf groups touched per defeatist descent)\n"
        + format_table(
            ["contender", "tau", "qps", "recall", "speedup", "leaves/query"], rows
        )
    )
    return sweep, best_exact_qps


def best_at_recall(sweep, floor: float):
    eligible = [cfg for cfg in sweep if cfg["recall"] >= floor]
    return max(eligible, key=lambda cfg: cfg["qps"]) if eligible else None


def test_sweep_clears_quick_floors():
    """Quick-scale shape check for the benchmark harness run."""
    sweep, best_exact_qps = run(quick=True)
    assert all(0.0 < cfg["recall"] <= 1.0 for cfg in sweep)
    best = best_at_recall(sweep, 0.8)
    assert best is not None, "no swept config reached recall 0.8 at quick scale"
    assert best["qps"] > best_exact_qps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    sweep, best_exact_qps = run(quick=args.quick)
    if not args.quick:
        # The acceptance bar: >= 10x the best exact batch throughput while
        # keeping recall >= 0.9.
        best = best_at_recall(sweep, 0.9)
        assert best is not None, "no swept config reached recall 0.9 at full scale"
        speedup = best["qps"] / best_exact_qps
        assert speedup >= 10.0, (
            f"best recall>=0.9 config ({best['rule']}, tau={best['tau']}) "
            f"only {speedup:.1f}x < 10x"
        )
        print(
            f"OK: {best['rule']} tau={best['tau']} — recall {best['recall']:.3f}, "
            f"{best['qps']:,.0f} qps, {speedup:.1f}x the best exact contender"
        )


if __name__ == "__main__":
    main()
