"""Section 5 — the new design point, end to end.

Paper: "a spatial index that executes spatial queries and the spatial join
faster than without index, but at the same time is faster to update or
rebuild ... they will speed up the overall process (index building and
querying)."

Reproduction: a full plasticity simulation (motion + monitoring queries every
step) run against (a) per-element R-tree updates, (b) per-step R-tree
rebuilds, (c) the incremental uniform grid, and (d) the adaptive index with
calibrated economics.  The figure of merit is the paper's: *total* step time,
maintenance plus queries.  Shape assertions: the grid-based designs beat both
R-tree strategies, and the adaptive index is never worse than the worst fixed
strategy it chooses between.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.core.adaptive import AdaptiveSimulationIndex
from repro.core.amortization import calibrate
from repro.core.uniform_grid import UniformGrid
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import PlasticityMotion, apply_moves
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

from bench_common import emit

STEPS = 3
QUERIES_PER_STEP = 40


def _drive(index, items, universe, queries, rebuild=False, adaptive=False):
    index.bulk_load(items)
    live = dict(items)
    motion = PlasticityMotion(universe=universe, seed=21)
    start = time.perf_counter()
    hits = 0
    for _ in range(STEPS):
        moves = motion.step(live)
        apply_moves(live, moves)
        if adaptive:
            index.step(moves, expected_queries=len(queries))
        elif rebuild:
            index.bulk_load(list(live.items()))
        else:
            for eid, old, new in moves:
                index.update(eid, old, new)
        hits += sum(len(index.range_query(q)) for q in queries)
    return (time.perf_counter() - start) / STEPS, hits


def test_endtoend_adaptive_simulation(neuron_dataset, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    queries = random_range_queries(QUERIES_PER_STEP, universe, extent=1.5, seed=22)

    motion = PlasticityMotion(universe=universe, seed=23)
    calibration_moves = motion.step(dict(items))
    costs = calibrate(
        index_factory=lambda: UniformGrid(universe=universe),
        items=items,
        moved_items=calibration_moves,
        query_boxes=queries[:10],
        scan_factory=LinearScan,
    )

    def run_all():
        results = {}
        results["R-tree updates"] = _drive(
            RTree(max_entries=16), items, universe, queries
        )
        results["R-tree rebuild"] = _drive(
            RTree(max_entries=16), items, universe, queries, rebuild=True
        )
        results["Uniform grid"] = _drive(
            UniformGrid(universe=universe), items, universe, queries
        )
        results["Adaptive"] = _drive(
            AdaptiveSimulationIndex(universe, costs=costs),
            items,
            universe,
            queries,
            adaptive=True,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hits = {h for _, h in results.values()}
    assert len(hits) == 1, "all strategies must answer queries identically"

    rows = [[name, per_step] for name, (per_step, _) in results.items()]
    emit(
        f"End-to-end plasticity step cost ({len(items)} elements, "
        f"{QUERIES_PER_STEP} queries/step):\n"
        + format_table(["configuration", "s/step (maintenance+queries)"], rows)
        + "\npaper: trade query speed for build/update speed; win overall"
    )

    per_step = {name: cost for name, (cost, _) in results.items()}
    assert per_step["Uniform grid"] < per_step["R-tree updates"]
    assert per_step["Adaptive"] < max(per_step["R-tree updates"], per_step["R-tree rebuild"])
