"""Benchmark-suite conftest: fixture re-exports only.

All real helpers live in :mod:`bench_common` so that nothing in this package
depends on the module name ``conftest`` — pytest imports conftest files under
that bare name, and two directories both providing helper-bearing conftests
shadow each other when collected together (the seed's original failure mode).
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from bench_common import (  # noqa: E402,F401  (fixtures picked up by pytest)
    neuron_dataset,
    neuron_items,
    paper_queries,
)
