"""Observability overhead: what instrumentation costs when nobody is looking.

ISSUE 10 keeps every hot path instrumented *unconditionally* — session
flushes, join strategy runs, spill partition/merge, worker shards — and
pays for it with a disabled-tracer fast path (one cached no-op context
manager, no allocation).  This bench pins the two bars from the issue:

* **disabled overhead < 2 %** — measured structurally: the micro-cost of
  one disabled ``span()`` call × the number of spans a traced flush
  actually records, as a fraction of the untraced flush wall time.  This
  is the honest form of the bound — a wall-clock A/B at < 2 % drowns in
  scheduler noise, while the per-span cost is stable to nanoseconds;
* **traced ≤ 1.15x untraced** — the same query-session flush workload
  with tracing on vs off, best-of-5 wall clock (reported always, asserted
  at full scale where the runs are long enough to time).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick  # CI

Also collectable by pytest, where it runs at quick scale and asserts the
disabled-path bound (the wall-clock ratio stays report-only at that
scale).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import emit, range_window_workload
from repro import (
    QuerySession,
    UniformGrid,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing_enabled,
)
from repro.analysis.reporting import format_table
from repro.geometry.aabb import AABB

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000
MICRO_ITERS = 200_000
DISABLED_BUDGET = 0.02  # the issue's acceptance bar
TRACED_RATIO_BAR = 1.15


def best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_disabled_span_cost(iters: int = MICRO_ITERS) -> float:
    """Seconds per ``span()`` call while the tracer is disabled."""
    from repro.obs import span

    assert not tracing_enabled()
    start = time.perf_counter()
    for _ in range(iters):
        with span("bench.noop"):
            pass
    elapsed = time.perf_counter() - start
    # Subtract the loop's own floor so the number is the span cost, not
    # the iteration cost.
    start = time.perf_counter()
    for _ in range(iters):
        pass
    floor = time.perf_counter() - start
    return max(elapsed - floor, 0.0) / iters


def run(quick: bool = False) -> dict[str, float]:
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    items, queries = range_window_workload(n, m)
    grid = UniformGrid(universe=UNIVERSE)
    grid.bulk_load(items)
    session = QuerySession(grid, dedup=False)
    session.range_query(queries)  # warm kernels / caches once

    disable_tracing()
    per_span = micro_disabled_span_cost()
    untraced = best_of(lambda: session.range_query(queries))

    tracer = enable_tracing()
    tracer.clear()
    session.range_query(queries)
    spans_per_flush = len(tracer.spans())
    traced = best_of(lambda: session.range_query(queries))
    tracer.clear()
    disable_tracing()

    # Structural bound: even if a flush recorded 10x the spans it does
    # today, the disabled path charges per_span each — relate that to the
    # untraced flush wall time.
    disabled_overhead = (per_span * spans_per_flush) / untraced
    ratio = traced / untraced

    emit(
        f"Observability overhead — n={n:,}, m={m:,}\n"
        + format_table(
            ["metric", "value"],
            [
                ["disabled span cost (ns)", per_span * 1e9],
                ["spans per traced flush", float(spans_per_flush)],
                ["untraced flush (s)", untraced],
                ["traced flush (s)", traced],
                ["disabled overhead (%)", disabled_overhead * 100.0],
                ["traced / untraced", ratio],
            ],
        )
    )
    return {
        "per_span_ns": per_span * 1e9,
        "spans_per_flush": float(spans_per_flush),
        "untraced_s": untraced,
        "traced_s": traced,
        "disabled_overhead": disabled_overhead,
        "traced_ratio": ratio,
    }


def test_obs_overhead_quick_scale():
    """Harness smoke: the disabled fast path is structurally free."""
    was_enabled = tracing_enabled()
    try:
        results = run(quick=True)
    finally:
        get_tracer().enabled = was_enabled
    assert results["spans_per_flush"] >= 1, "traced flush recorded no spans"
    assert results["disabled_overhead"] < DISABLED_BUDGET, (
        f"disabled-tracer overhead {results['disabled_overhead'] * 100:.3f}% "
        f">= {DISABLED_BUDGET * 100:.0f}% "
        f"({results['per_span_ns']:.0f} ns x {results['spans_per_flush']:.0f} spans "
        f"vs {results['untraced_s'] * 1e3:.1f} ms flush)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    results = run(quick=args.quick)
    assert results["disabled_overhead"] < DISABLED_BUDGET, (
        f"disabled-tracer overhead {results['disabled_overhead'] * 100:.3f}% "
        f">= {DISABLED_BUDGET * 100:.0f}%"
    )
    print(
        f"OK: disabled overhead {results['disabled_overhead'] * 100:.4f}% "
        f"({results['per_span_ns']:.0f} ns/span x "
        f"{results['spans_per_flush']:.0f} spans/flush)"
    )
    if args.quick:
        print(f"traced/untraced {results['traced_ratio']:.3f}x (report-only at quick scale)")
        return
    assert results["traced_ratio"] <= TRACED_RATIO_BAR, (
        f"traced flush {results['traced_ratio']:.3f}x untraced "
        f"> {TRACED_RATIO_BAR:.2f}x"
    )
    print(f"OK: traced/untraced {results['traced_ratio']:.3f}x (<= {TRACED_RATIO_BAR:.2f}x)")


if __name__ == "__main__":
    main()
