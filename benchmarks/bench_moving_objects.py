"""Section 4.2 — moving-object update mechanisms under simulation motion.

Paper claims reproduced:

* predictive (TPR-style) indexes "do not work well for simulations because
  the movement of objects cannot be predicted" — re-anchor counts explode on
  Brownian motion vs linear motion;
* grace windows and update buffering "shift the burden to the query
  execution" — per-query refine/extra tests are reported alongside the
  update savings;
* "completely rebuilding indexes quickly becomes more efficient" — the
  throwaway/rebuild strategies and the incremental grid undercut per-element
  R-tree updates on total step cost.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.core.uniform_grid import UniformGrid
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import BrownianMotion, LinearMotion, PlasticityMotion, apply_moves
from repro.indexes.rtree import RTree
from repro.moving.bottom_up import BottomUpRTree
from repro.moving.buffered_rtree import BufferedRTree
from repro.moving.lur_tree import LURTree
from repro.moving.throwaway import ThrowawayIndex
from repro.moving.tpr import TPRIndex

from bench_common import emit

STEPS = 3
QUERIES_PER_STEP = 30


def test_update_strategies_step_cost(neuron_dataset, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    queries = random_range_queries(QUERIES_PER_STEP, universe, extent=1.5, seed=8)

    contenders = {
        "R-tree updates": RTree(max_entries=16),
        "R-tree rebuild": RTree(max_entries=16),
        "R-tree bottom-up": BottomUpRTree(max_entries=16),
        "LUR-tree (grace)": LURTree(grace=0.3, max_entries=16),
        "Buffered R-tree": BufferedRTree(buffer_capacity=len(items) + 1, max_entries=16),
        "Throwaway grid": ThrowawayIndex(universe=universe),
        "Uniform grid (incremental)": UniformGrid(universe=universe),
    }

    def run_all():
        results = {}
        for name, index in contenders.items():
            index.bulk_load(items)
            live = dict(items)
            motion = PlasticityMotion(universe=universe, seed=9)
            start = time.perf_counter()
            reference = None
            for _ in range(STEPS):
                moves = motion.step(live)
                if name == "R-tree rebuild":
                    apply_moves(live, moves)
                    index.bulk_load(list(live.items()))
                else:
                    for eid, old, new in moves:
                        index.update(eid, old, new)
                    apply_moves(live, moves)
                step_hits = sum(len(index.range_query(q)) for q in queries)
                reference = step_hits if reference is None else reference
            elapsed = time.perf_counter() - start
            results[name] = (elapsed / STEPS, step_hits)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    final_hits = {hits for _, hits in results.values()}
    assert len(final_hits) == 1, f"strategies disagree on query results: {results}"

    rows = [[name, per_step] for name, (per_step, _) in results.items()]
    emit(
        f"Moving-object strategies — seconds per step ({len(items)} elements, "
        f"{QUERIES_PER_STEP} queries/step, plasticity motion):\n"
        + format_table(["strategy", "s/step"], rows)
        + "\npaper: per-element tree updates lose to rebuilds and grids"
    )

    per_step = {name: cost for name, (cost, _) in results.items()}
    assert per_step["Uniform grid (incremental)"] < per_step["R-tree updates"]
    assert min(per_step["Throwaway grid"], per_step["R-tree rebuild"]) < per_step[
        "R-tree updates"
    ]


def test_tpr_prediction_fails_on_brownian(neuron_dataset, benchmark):
    items = neuron_dataset.items[:5000]
    universe = neuron_dataset.universe

    def run(motion_factory):
        index = TPRIndex(max_speed=0.15, horizon=8, max_entries=16)
        index.bulk_load(items)
        live = dict(items)
        motion = motion_factory()
        for _ in range(6):
            moves = motion.step(live)
            index.advance(moves)
            apply_moves(live, moves)
        return index.re_anchors / (len(items) * 6)

    def run_both():
        linear_rate = run(lambda: LinearMotion(speed=0.05, universe=universe, seed=10))
        brownian_rate = run(lambda: BrownianMotion(sigma=0.5, universe=universe, seed=10))
        return linear_rate, brownian_rate

    linear_rate, brownian_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "TPR-style prediction — re-anchor rate per element-step:\n"
        + format_table(
            ["motion", "re-anchor rate"],
            [["linear (predictable)", linear_rate], ["Brownian (simulation)", brownian_rate]],
        )
        + "\npaper: 'the movement of objects cannot be predicted'"
    )
    assert brownian_rate > 3 * linear_rate
