"""Serving-tier throughput and latency: the worker pool vs per-flush forking.

ISSUE 6's performance claim is that a persistent shared-memory
:class:`~repro.serving.pool.WorkerPool` amortizes what the legacy sharded
path paid on every flush — pool start-up plus shipping the index into the
workers.  This bench pins it two ways at the paper's analysis scale
(n=100k elements / m=10k queries):

* **steady-state sharding** — the same ``ShardedExecutor`` workload run
  through the pool (snapshot attached once) vs the legacy per-flush fork
  path (``pool=False``); asserted ≥ 2x qps at full scale on ≥ 4 cores;
* **async serving** — N=8 asyncio clients sustaining a mixed range/kNN
  workload through a :class:`ServingSession`; reports client-observed
  p50/p99 latency and aggregate qps, with every answer checked against the
  LinearScan oracle.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full scale
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_serving.py``),
where it runs at quick scale and checks correctness, not wall-clock.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit, range_window_workload
from repro import (
    AABB,
    KNNQuery,
    QuerySession,
    RangeQuery,
    SelfJoinSpec,
    ServingSession,
    ShardedExecutor,
    UniformGrid,
    WorkerPool,
    enable_tracing,
    get_tracer,
    tracing_enabled,
)
from repro.analysis.reporting import format_table
from repro.engine.session import _fork_is_safe
from repro.indexes.linear_scan import LinearScan

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000
CLIENTS = 8
REQUESTS_PER_CLIENT_FULL = 150
REQUESTS_PER_CLIENT_QUICK = 30

# Observability artifacts (ISSUE 10): a short traced pass runs *after* the
# timed workload, so the exported trace shows real pool traffic without
# perturbing the measured qps/latency numbers.
TRACE_ARTIFACT = "BENCH_serving_trace.json"
METRICS_ARTIFACT = "BENCH_serving_metrics.json"


def best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def bench_pool_vs_fork(grid, queries, m: int, pool: WorkerPool) -> dict[str, float]:
    """The same sharded workload, pool-backed vs per-flush fork."""
    workers = pool.workers
    min_shard = max(m // (2 * workers), 1)
    pooled = QuerySession(
        grid, dedup=False, executor=ShardedExecutor(workers=workers, min_shard=min_shard, pool=pool)
    )
    forked = QuerySession(
        grid, dedup=False, executor=ShardedExecutor(workers=workers, min_shard=min_shard, pool=False)
    )
    expected = pooled.range_query(queries)  # also warms pool + snapshot
    assert forked.range_query(queries) == expected, "fork path diverged from pool path"

    pooled_time = best_of(lambda: pooled.range_query(queries))
    forked_time = best_of(lambda: forked.range_query(queries))
    return {
        "pooled_qps": m / pooled_time,
        "forked_qps": m / forked_time,
        "speedup": forked_time / pooled_time,
        "exports": float(pool.exports),
    }


async def _client(serving, oracle, boxes, points, latencies, check: bool):
    for box, point in zip(boxes, points):
        start = time.perf_counter()
        ids = await serving.range_query(box)
        latencies.append(time.perf_counter() - start)
        if check:
            assert sorted(ids) == sorted(oracle.range_query(box))
        start = time.perf_counter()
        neighbours = await serving.knn(point, 8)
        latencies.append(time.perf_counter() - start)
        if check:
            exact = oracle.knn(point, 8)
            assert [eid for _, eid in neighbours] == [eid for _, eid in exact]


async def _export_artifacts(serving, oracle, workload, items) -> None:
    """One traced round through the live session, then write the
    Chrome-trace JSON and the merged metrics snapshot for CI to upload.
    The pooled self-join is what puts *worker* spans in the trace: single
    awaited queries batch too narrowly to shard, but the join fans out
    across the pool and its worker spans merge back under the flush span."""
    was_enabled = tracing_enabled()
    tracer = enable_tracing()
    tracer.clear()
    try:
        boxes, points = workload
        await _client(serving, oracle, boxes[:4], points[:4], [], check=False)
        await serving.join(SelfJoinSpec(items[: max(len(items) // 2, 6_000)]))
    finally:
        tracer.enabled = was_enabled
    events = serving.export_trace(TRACE_ARTIFACT)
    assert events, "traced pass produced no spans"
    with open(METRICS_ARTIFACT, "w") as fh:
        fh.write(serving.metrics_json(indent=1))
    tracer.clear()


def bench_async_serving(
    grid, oracle, pool: WorkerPool, requests_per_client: int, check: bool, items
) -> dict[str, float]:
    rng = np.random.default_rng(3)
    per_client: list[tuple[list[AABB], list[tuple[float, ...]]]] = []
    for _ in range(CLIENTS):
        lo = rng.uniform(0.0, 98.0, size=(requests_per_client, 3))
        boxes = [AABB(row, np.minimum(row + 2.0, 100.0)) for row in lo]
        points = [tuple(p) for p in rng.uniform(0.0, 100.0, size=(requests_per_client, 3))]
        per_client.append((boxes, points))

    latencies: list[float] = []

    async def main() -> float:
        async with ServingSession(grid, pool=pool, min_shard=4) as serving:
            start = time.perf_counter()
            await asyncio.gather(
                *(
                    _client(serving, oracle, boxes, points, latencies, check)
                    for boxes, points in per_client
                )
            )
            elapsed = time.perf_counter() - start
            stats = serving.queries.stats
            assert stats.queue_high_water >= 2, "clients never overlapped in the queue"
            assert sum(stats.flush_triggers.values()) == stats.flushes
            await _export_artifacts(serving, oracle, per_client[0], items)
            return elapsed

    elapsed = asyncio.run(main())
    total = 2 * CLIENTS * requests_per_client
    return {
        "async_qps": total / elapsed,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "requests": float(total),
    }


def run(quick: bool = False) -> dict[str, float]:
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    requests = REQUESTS_PER_CLIENT_QUICK if quick else REQUESTS_PER_CLIENT_FULL
    items, queries = range_window_workload(n, m)
    grid = UniformGrid(universe=UNIVERSE)
    grid.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)

    cpus = multiprocessing.cpu_count()
    with WorkerPool(workers=min(cpus, 4) if cpus > 1 else 2) as pool:
        sharded = bench_pool_vs_fork(grid, queries, m, pool)
        # Oracle-check every async answer at quick scale; at full scale spot
        # throughput (the correctness pin lives in tests/test_serving.py).
        serving = bench_async_serving(grid, oracle, pool, requests, check=quick, items=items)

    emit(
        f"Serving tier — n={n:,}, m={m:,}, {cpus} CPUs visible\n"
        + format_table(
            ["sharded path", "qps", "vs per-flush fork"],
            [
                ["per-flush fork", sharded["forked_qps"], 1.0],
                ["worker pool", sharded["pooled_qps"], sharded["speedup"]],
            ],
        )
        + f"\nindex exports over the whole run: {sharded['exports']:.0f}\n\n"
        + f"async serving — {CLIENTS} clients x {requests} range+kNN rounds\n"
        + format_table(
            ["metric", "value"],
            [
                ["qps", serving["async_qps"]],
                ["p50 latency (ms)", serving["p50_ms"]],
                ["p99 latency (ms)", serving["p99_ms"]],
            ],
        )
    )
    return {**sharded, **serving, "cpus": float(cpus)}


def test_serving_bench_quick_scale():
    """Harness smoke: pooled results stay correct and telemetry adds up."""
    results = run(quick=True)
    assert results["exports"] == 1.0  # one snapshot across every flush
    assert results["requests"] == 2.0 * CLIENTS * REQUESTS_PER_CLIENT_QUICK
    # The observability artifacts CI uploads are well-formed and non-empty.
    with open(TRACE_ARTIFACT) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"]
    assert any(
        event["name"] == "serving.flush" for event in events
    ), "trace artifact is missing serving.flush spans"
    worker_events = [event for event in events if event["name"].startswith("worker.")]
    assert worker_events, "trace artifact has no pool-worker spans"
    parent_pid = os.getpid()
    assert any(event["pid"] != parent_pid for event in worker_events), (
        "worker spans all carry the parent pid — pool propagation broke"
    )
    with open(METRICS_ARTIFACT) as fh:
        metrics = json.load(fh)
    assert metrics["query.flushes"]["value"] > 0
    assert metrics["serving.flush.seconds"]["count"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    results = run(quick=args.quick)
    assert results["exports"] == 1.0, (
        f"expected one snapshot export, saw {results['exports']:.0f}"
    )
    if args.quick:
        return
    # The ISSUE 6 acceptance bar: the persistent pool must at least double
    # per-flush-fork throughput — but only where the hardware can show it.
    if results["cpus"] >= 4 and _fork_is_safe():
        assert results["speedup"] >= 2.0, (
            f"pool speedup {results['speedup']:.2f}x < 2x over per-flush fork "
            f"on {results['cpus']:.0f} CPUs"
        )
        print(f"OK: pool speedup {results['speedup']:.2f}x (>= 2x)")
    else:
        print(
            f"SKIP pool-speedup assertion: {results['cpus']:.0f} CPU(s) visible — "
            f"measured {results['speedup']:.2f}x"
        )
    print(
        f"async serving: {results['async_qps']:.0f} qps, "
        f"p50 {results['p50_ms']:.2f} ms, p99 {results['p99_ms']:.2f} ms"
    )


if __name__ == "__main__":
    main()
