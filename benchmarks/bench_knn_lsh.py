"""Section 3.3 — LSH for kNN in low dimensions, without a tree.

Paper: "LSH has traditionally been used for similarity search in very high
dimensions but can potentially also be used for finding nearest neighbors in
low dimensions.  Crucially, LSH avoids a tree structure."

Reproduction: kNN(10) on clustered 3-d points.  We measure (a) recall vs the
exact answer, (b) candidates examined vs a full scan, and (c) node tests vs
the KD-tree — quantifying the open question the paper poses.  Shape
assertions: recall ≥ 0.9, candidate sets well below n, zero tree-node tests.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.spatial_lsh import SpatialLSH
from repro.datasets.points import gaussian_cluster_points
from repro.geometry.aabb import AABB
from repro.indexes.kdtree import KDTree
from repro.indexes.linear_scan import LinearScan

from bench_common import emit

UNIVERSE = AABB((0, 0, 0), (100, 100, 100))
N = 20_000
K = 10
PROBES = 50


def test_lsh_knn_low_dimensions(benchmark):
    items = gaussian_cluster_points(N, UNIVERSE, clusters=12, seed=2)
    # Clustered data defeats the uniform-density width formula; measure the
    # kNN radius on a sample instead (2x mean kth distance).
    width = SpatialLSH.estimate_bucket_width(items, k=K, sample=15, seed=1)
    lsh = SpatialLSH(dims=3, num_tables=12, hashes_per_table=3, bucket_width=width, seed=3)
    lsh.bulk_load(items)
    kdtree = KDTree(bucket_size=16)
    kdtree.bulk_load(items)
    oracle = LinearScan()
    oracle.bulk_load(items)

    rng = np.random.default_rng(4)
    query_points = [tuple(rng.uniform(10, 90, 3)) for _ in range(PROBES)]

    def run_lsh():
        return [lsh.knn(point, K) for point in query_points]

    lsh_answers = benchmark.pedantic(run_lsh, rounds=1, iterations=1)

    recalls = []
    for point, approx in zip(query_points, lsh_answers):
        exact = {eid for _, eid in oracle.knn(point, K)}
        recalls.append(len(exact & {eid for _, eid in approx}) / K)
    recall = float(np.mean(recalls))

    lsh_candidates = lsh.counters.elem_tests / PROBES
    for point in query_points:
        kdtree.knn(point, K)
    kd_node_tests = kdtree.counters.node_tests / PROBES

    emit(
        f"LSH kNN in 3-d — {N} clustered points, k={K}, {PROBES} probes:\n"
        + format_table(
            ["metric", "value"],
            [
                ["recall@10 vs exact", recall],
                ["LSH candidates/query", lsh_candidates],
                ["scan candidates/query", float(N)],
                ["LSH hash probes/query", lsh.counters.hash_probes / PROBES],
                ["LSH tree-node tests", lsh.counters.node_tests],
                ["KD-tree node tests/query", kd_node_tests],
            ],
        )
        + "\npaper: 'LSH avoids a tree structure' — open question quantified"
    )

    assert recall >= 0.9, f"recall too low: {recall:.2f}"
    # Clustered 3-d data: pruning is real but milder than in high dimensions;
    # the candidate set must still exclude the large majority of elements.
    assert lsh_candidates < N / 3, "LSH must prune most of the dataset"
    assert lsh.counters.node_tests == 0, "LSH must not traverse any tree"
