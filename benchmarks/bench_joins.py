"""Sections 3.2/3.3/4.3 — scalar vs vectorized join strategies.

Paper claims reproduced, now measured through the JoinSession registry:

* partitioned joins (grid / PBSM) do far fewer comparisons than the nested
  loop, and the sweep line "does not ensure that only spatially close
  objects are compared";
* "an approach based on a grid (similar to PBSM) optimized for memory ...
  will certainly speed up the preprocessing/indexing and thus the overall
  join" — and on top of that, running the *same algorithm* on the array
  kernels instead of per-pair Python loops is worth another order of
  magnitude.

Two measurements:

* **scalar vs vectorized** at n=100k per side: ``grid_scalar`` → ``grid``
  and ``pbsm_scalar`` → ``pbsm`` — the same algorithm doing (near-)identical
  comparison counts, executed on kernels instead of Python loops.  The
  acceptance bar (asserted at full scale): the vectorized grid or PBSM join
  is ≥ 3x its scalar baseline.
* **strategy field** at a mid scale every algorithm can afford (including
  the Python-loop TOUCH and the quadratic-candidate sweep line), all
  agreeing pair-for-pair.

Usage::

    PYTHONPATH=src python benchmarks/bench_joins.py          # full scale
    PYTHONPATH=src python benchmarks/bench_joins.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_joins.py``),
where it runs at quick scale and checks agreement, not wall-clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit
from repro.analysis.reporting import format_table
from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.joins import JoinSession, PairJoinSpec

FULL_N = 100_000
QUICK_N = 4_000
FIELD_N = 4_000  # scale the Python-loop TOUCH can afford


def join_workload(n: int, seed: int = 0):
    """Two disjoint sets of synapse-scale boxes in the canonical universe."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 99.0, size=(2 * n, 3))
    hi = np.minimum(lo + rng.uniform(0.05, 1.0, size=(2 * n, 3)), 100.0)
    items = [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]
    return items[:n], items[n:]


def timed_join(name: str, items_a, items_b) -> tuple[list, float, int]:
    session = JoinSession(strategy=name)
    counters = session.counters
    start = time.perf_counter()
    pairs = session.run(PairJoinSpec(items_a, items_b))
    elapsed = time.perf_counter() - start
    return pairs, elapsed, counters.comparisons


def run(quick: bool = False) -> dict[str, float]:
    n = QUICK_N if quick else FULL_N
    side_a, side_b = join_workload(n)

    # -- scalar vs vectorized, same algorithm --------------------------------
    rows = []
    speedups: dict[str, float] = {}
    reference: list | None = None
    for family, scalar_name, vector_name in (
        ("grid", "grid_scalar", "grid"),
        ("PBSM", "pbsm_scalar", "pbsm"),
    ):
        scalar_pairs, scalar_time, scalar_cmp = timed_join(scalar_name, side_a, side_b)
        vector_pairs, vector_time, vector_cmp = timed_join(vector_name, side_a, side_b)
        assert vector_pairs == scalar_pairs, f"{family}: vectorized diverged from scalar"
        if reference is None:
            reference = scalar_pairs
        else:
            assert scalar_pairs == reference, f"{family} disagrees with grid"
        speedups[family] = scalar_time / vector_time
        rows.append([f"{family} scalar", scalar_time, scalar_cmp, len(scalar_pairs), 1.0])
        rows.append([f"{family} vectorized", vector_time, vector_cmp, len(vector_pairs), speedups[family]])

    emit(
        f"Scalar vs vectorized joins — |A| = |B| = {n:,}:\n"
        + format_table(["strategy", "wall s", "comparisons", "pairs", "speedup"], rows)
        + "\npaper: grids cut preprocessing; kernels cut the Python tax"
    )

    # -- the full strategy field at a scale everyone can afford --------------
    field_n = min(n, FIELD_N)
    field_a, field_b = side_a[:field_n], side_b[:field_n]
    field_rows = []
    field_reference: list | None = None
    comparisons: dict[str, int] = {}
    for name in ("sweepline", "pbsm", "tree", "touch", "grid"):
        pairs, elapsed, cmp_count = timed_join(name, field_a, field_b)
        comparisons[name] = cmp_count
        if field_reference is None:
            field_reference = pairs
        else:
            assert pairs == field_reference, f"{name} disagrees on the field workload"
        field_rows.append([name, elapsed, cmp_count, len(pairs)])
    emit(
        f"Strategy field — |A| = |B| = {field_n:,}:\n"
        + format_table(["strategy", "wall s", "comparisons", "pairs"], field_rows)
        + "\npaper: the sweep line prunes by x only; partitioning prunes by space"
    )
    # Sweep-line criticism, in numbers: x-only pruning compares far more.
    assert comparisons["sweepline"] > 3 * comparisons["pbsm"]

    return speedups


def test_strategies_agree_at_quick_scale():
    """Harness smoke: scalar and vectorized variants agree pair-for-pair."""
    run(quick=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (4k per side)")
    args = parser.parse_args()
    speedups = run(quick=args.quick)
    if args.quick:
        return
    # The ISSUE 4 acceptance bar, at full scale only: vectorized grid or
    # PBSM ≥ 3x its scalar baseline at n=100k.
    best = max(speedups.values())
    assert best >= 3.0, f"best vectorized speedup {best:.2f}x < 3x ({speedups})"
    print(
        "OK: vectorized speedups "
        + ", ".join(f"{k} {v:.1f}x" for k, v in speedups.items())
        + " (best >= 3x)"
    )


if __name__ == "__main__":
    main()
