"""Sections 3.2/3.3/4.3 — spatial join algorithms on the synapse workload.

Paper claims reproduced:

* the nested loop is quadratic; the sweep line "does not ensure that only
  spatially close objects are compared";
* TOUCH beats both in memory but "depends on a costly data-oriented
  partitioning & indexing step prior to the join";
* "an approach based on a grid (similar to PBSM) optimized for memory ...
  will certainly speed up the preprocessing/indexing and thus the overall
  join".

We run the synapse-detection distance join (ε-apposition of neuron capsule
segments) through every algorithm, reporting comparisons, preprocessing time
and total wall-clock.  Shape assertions: all algorithms agree; partitioned
joins do far fewer comparisons than the nested loop; grid preprocessing is
cheaper than TOUCH's tree build.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.instrumentation.counters import Counters
from repro.joins.grid_join import grid_join
from repro.joins.nested_loop import nested_loop_join
from repro.joins.pbsm import pbsm_join
from repro.joins.sweepline import sweepline_join
from repro.joins.touch import touch_join

from bench_common import emit

EPSILON = 0.1


JOIN_SIDE = 3000  # nested-loop oracle is O(|A|·|B|); keep it tractable


def _expanded_halves(dataset):
    """Two disjoint ε-expanded samples for a binary join."""
    items = [(eid, box.expanded(EPSILON / 2)) for eid, box in dataset.items]
    return items[:JOIN_SIDE], items[JOIN_SIDE : 2 * JOIN_SIDE]


def test_join_comparison(neuron_dataset, benchmark):
    side_a, side_b = _expanded_halves(neuron_dataset)

    algorithms = {
        "nested loop": nested_loop_join,
        "sweep line": sweepline_join,
        "PBSM": pbsm_join,
        "TOUCH": touch_join,
        "grid join": grid_join,
    }

    def run_all():
        results = {}
        for name, algorithm in algorithms.items():
            counters = Counters()
            start = time.perf_counter()
            pairs = algorithm(side_a, side_b, counters=counters)
            elapsed = time.perf_counter() - start
            results[name] = (sorted(pairs), counters.comparisons, elapsed)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    reference = results["nested loop"][0]
    rows = []
    for name, (pairs, comparisons, elapsed) in results.items():
        assert pairs == reference, f"{name} disagrees with the nested loop"
        rows.append([name, comparisons, len(pairs), elapsed])

    emit(
        f"Spatial joins — synapse candidates (|A|={len(side_a)}, |B|={len(side_b)}, "
        f"eps={EPSILON}):\n"
        + format_table(["algorithm", "comparisons", "pairs", "wall s"], rows)
        + "\npaper: partitioned joins cut comparisons; grids cut preprocessing"
    )

    nested_cmp = results["nested loop"][1]
    assert results["PBSM"][1] < nested_cmp / 20
    assert results["grid join"][1] < nested_cmp / 20
    assert results["sweep line"][1] < nested_cmp  # prunes by x only


def test_grid_join_beats_touch_end_to_end(neuron_dataset, benchmark):
    """§3.3: "will certainly speed up the preprocessing/indexing and thus the
    overall join" — measured as total (partition + probe) time.

    TOUCH's data-oriented hierarchy is expensive to build *and* strands
    boundary-spanning elements high in the tree where they face large
    comparison sets; the grid partitions in one pass and compares only cell
    co-residents.
    """
    side_a, side_b = _expanded_halves(neuron_dataset)

    def run_both():
        start = time.perf_counter()
        touch_counters = Counters()
        touch_pairs = touch_join(side_a, side_b, counters=touch_counters)
        touch_total = time.perf_counter() - start
        start = time.perf_counter()
        grid_counters = Counters()
        grid_pairs = grid_join(side_a, side_b, counters=grid_counters)
        grid_total = time.perf_counter() - start
        assert sorted(touch_pairs) == sorted(grid_pairs)
        return touch_total, touch_counters, grid_total, grid_counters

    touch_total, touch_counters, grid_total, grid_counters = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emit(
        "End-to-end join — TOUCH vs grid (partition + probe, "
        f"{len(side_a)}x{len(side_b)} elements):\n"
        + format_table(
            ["method", "total s", "comparisons"],
            [
                ["TOUCH (tree build + probe)", touch_total, touch_counters.comparisons],
                ["grid join (one-pass partition)", grid_total, grid_counters.comparisons],
            ],
        )
    )
    assert grid_total < touch_total
    assert grid_counters.comparisons < touch_counters.comparisons
