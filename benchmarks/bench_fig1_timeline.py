"""Figure 1 — timeline of a time-stepped simulation.

Paper: each time step interleaves a "multitude of analysis & update queries"
(computing the next state) with monitoring-phase analysis queries.

Reproduction: a neural plasticity simulation with an in-situ range monitor,
reporting the per-step phase timeline (compute / index maintenance /
monitoring) the figure sketches.  Shape assertions: every phase is exercised
every step, and the counters attribute both update queries and analysis
queries.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.uniform_grid import UniformGrid
from repro.sim.engine import TimeSteppedSimulation
from repro.sim.monitors import RangeMonitor
from repro.sim.plasticity import PlasticityModel

from bench_common import emit

STEPS = 5


def test_fig1_simulation_timeline(neuron_dataset, benchmark):
    items = dict(neuron_dataset.items)
    universe = neuron_dataset.universe
    model = PlasticityModel(items, universe, neighbourhood_queries=16, seed=31)
    index = UniformGrid(universe=universe)
    monitor = RangeMonitor(universe, queries_per_step=50, extent=1.5, seed=32)
    sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance="update")

    reports = benchmark.pedantic(lambda: sim.run(STEPS), rounds=1, iterations=1)

    rows = [
        [
            report.step,
            report.compute_seconds,
            report.maintenance_seconds,
            report.monitor_seconds,
            report.moves,
            report.strategy,
        ]
        for report in reports
    ]
    emit(
        f"Figure 1 — simulation timeline ({len(items)} elements):\n"
        + format_table(
            ["step", "compute s", "maintain s", "monitor s", "moves", "strategy"],
            rows,
        )
        + "\npaper: analysis & update queries during the step, analysis "
        "queries while monitoring"
    )

    for report in reports:
        assert report.moves == len(items)  # everything moves, every step
        assert report.compute_seconds > 0
        assert report.maintenance_seconds > 0
        assert report.monitor_seconds > 0
    assert len(monitor.result_counts) == STEPS * 50
    assert len(sim.model.density_samples) == STEPS * 16
