"""Figure 4 — narrow data-oriented partitions cause unnecessary tests.

Paper: "a range query intersecting with such a partition may contain only few
of the partition's elements, yet all elements need to be tested for
intersection, leading to unnecessary intersection tests.  This degrades
performance particularly in memory."

Reproduction: a dataset of strongly *elongated* elements (neuron-segment
style) makes R-tree leaf partitions narrow; we measure the **waste ratio** —
element tests that did not produce a hit, per query — for the data-oriented
R-tree vs the space-oriented uniform grid at the analytical-model resolution.
Shape assertion: the R-tree wastes a higher fraction of its element tests
than the grid.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.resolution import optimal_cell_size
from repro.core.uniform_grid import UniformGrid
from repro.datasets.points import clustered_boxes
from repro.datasets.queries import random_range_queries
from repro.geometry.aabb import AABB
from repro.indexes.rtree import RTree

from bench_common import emit

UNIVERSE = AABB((0, 0, 0), (100, 100, 100))


def _waste(index, queries):
    tests = 0
    hits = 0
    before = index.counters.snapshot()
    for query in queries:
        hits += len(index.range_query(query))
    tests = index.counters.diff(before).elem_tests
    return tests, hits, (tests - hits) / max(tests, 1)


def test_fig4_partition_waste(benchmark):
    items = clustered_boxes(
        20_000, UNIVERSE, clusters=10, min_extent=0.1, max_extent=0.5,
        elongation=60.0, seed=3,
    )
    queries = random_range_queries(100, UNIVERSE, extent=4.0, seed=5)

    rtree = RTree(max_entries=16)
    rtree.bulk_load(items)
    extents = [max(box.extents()) for _, box in items]
    cell = optimal_cell_size(
        len(items), UNIVERSE, sum(extents) / len(extents), avg_query_extent=4.0
    )
    grid = UniformGrid(universe=UNIVERSE, cell_size=cell)
    grid.bulk_load(items)

    def run():
        return _waste(rtree, queries), _waste(grid, queries)

    (rtree_stats, grid_stats) = benchmark.pedantic(run, rounds=1, iterations=1)
    rtree_tests, rtree_hits, rtree_waste = rtree_stats
    grid_tests, grid_hits, grid_waste = grid_stats
    assert rtree_hits == grid_hits  # identical answers

    emit(
        "Figure 4 — unnecessary element tests on elongated elements "
        f"({len(items)} elements, 100 queries):\n"
        + format_table(
            ["index", "elem tests", "hits", "wasted fraction"],
            [
                ["R-tree (data-oriented)", rtree_tests, rtree_hits, rtree_waste],
                ["Uniform grid (space-oriented)", grid_tests, grid_hits, grid_waste],
            ],
        )
        + "\npaper: narrow data-oriented partitions => unnecessary tests"
    )

    assert rtree_waste > grid_waste, (
        f"data-oriented partitioning should waste more tests "
        f"({rtree_waste:.2f} vs {grid_waste:.2f})"
    )
