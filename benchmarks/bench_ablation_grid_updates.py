"""Ablation — grid cell size vs update economics (§4.3).

Paper: "the small movement means that only few elements switch grid cell in
every step, thereby requiring few updates to the data structure."

Reproduction: sweep the grid resolution and measure, under one plasticity
step, (a) the fraction of elements that actually switch cells and (b) the
modeled maintenance cost — against the query cost at that resolution.  Shape
assertions: finer cells ⇒ more cell switches; at the analytical optimum the
switch rate stays below a few percent (the §4.3 claim).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.resolution import optimal_cell_size
from repro.core.uniform_grid import UniformGrid
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import PlasticityMotion
from repro.instrumentation.costmodel import MemoryCostModel

from bench_common import emit


def test_cell_size_vs_update_cost(neuron_dataset, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    mean_extent, _ = neuron_dataset.element_extent_stats()
    optimum = optimal_cell_size(len(items), universe, mean_extent, avg_query_extent=1.0)
    # Cells far below the element extent explode replication cubically
    # (that pathology is the resolution model's own finding); sweep from
    # half the optimum upward.
    cells = [optimum / 2, optimum, optimum * 2, optimum * 4, optimum * 8]
    queries = random_range_queries(50, universe, extent=1.0, seed=13)

    def sweep():
        rows = []
        switch_rates = {}
        for cell in cells:
            grid = UniformGrid(universe=universe, cell_size=cell)
            grid.bulk_load(items)
            motion = PlasticityMotion(universe=universe, seed=14)
            moves = motion.step(dict(items))
            before = grid.counters.snapshot()
            for eid, old, new in moves:
                grid.update(eid, old, new)
            maintain = MemoryCostModel().seconds(grid.counters.diff(before))
            before = grid.counters.snapshot()
            for query in queries:
                grid.range_query(query)
            query_cost = MemoryCostModel().seconds(grid.counters.diff(before))
            switch_rate = grid.cell_switches / max(grid.counters.updates, 1)
            switch_rates[cell] = switch_rate
            rows.append([f"{cell:.3f}", switch_rate, maintain * 1e3, query_cost * 1e3])
        return rows, switch_rates

    rows, switch_rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — grid resolution vs plasticity-step update economics "
        f"(optimum {optimum:.3f}):\n"
        + format_table(
            ["cell size", "cell-switch rate", "maintain ms", "query ms (50q)"], rows
        )
        + "\npaper: small motion => few grid cell switches (rate is governed "
        "by displacement/cell-size)"
    )

    # The §4.3 claim, quantified: the switch rate falls monotonically as
    # cells coarsen, and once cells dwarf the per-step displacement almost
    # no update touches the structure.
    ordered = sorted(switch_rates)
    rates_in_order = [switch_rates[cell] for cell in ordered]
    assert all(a >= b for a, b in zip(rates_in_order, rates_in_order[1:])), (
        f"switch rate must fall with coarser cells, got {rates_in_order}"
    )
    assert rates_in_order[-1] < 0.1, (
        f"coarse cells must rarely switch, got {rates_in_order[-1]:.2f}"
    )
