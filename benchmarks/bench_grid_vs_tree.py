"""Sections 3.2/3.3 — trees vs grids in memory (and the CR-tree's 2×).

Paper claims reproduced here:

* the CR-tree "only speeds up query execution by a factor of two over the
  R-Tree ... because the fundamental problem of overlap remains" — we
  measure its memory-traffic saving and confirm it does NOT remove tree
  intersection tests;
* grids "avoid a costly tree structure and ... effectively reduce the number
  of intersection tests" — we measure zero node tests and lower modeled
  query cost on the simulation workload.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.resolution import optimal_cell_size
from repro.core.uniform_grid import UniformGrid
from repro.indexes.crtree import CRTree
from repro.indexes.rtree import RTree
from repro.instrumentation.costmodel import MemoryCostModel

from bench_common import emit


def test_grid_vs_tree_queries(neuron_dataset, paper_queries, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    mean_extent, _ = neuron_dataset.element_extent_stats()
    query_extent = max(paper_queries[0].extents())
    cell = optimal_cell_size(len(items), universe, mean_extent, query_extent)

    contenders = {
        "R-tree": RTree(max_entries=16),
        "CR-tree": CRTree(max_entries=42),
        "Uniform grid": UniformGrid(universe=universe, cell_size=cell),
        "Multi-res grid": MultiResolutionGrid(universe=universe, levels=4),
    }
    model = MemoryCostModel()
    rows = []
    stats = {}

    def run_all():
        results = {}
        for name, index in contenders.items():
            index.bulk_load(items)
            before = index.counters.snapshot()
            hits = 0
            for query in paper_queries:
                hits += len(index.range_query(query))
            results[name] = (index.counters.diff(before), hits)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    reference_hits = None
    for name, (counters, hits) in results.items():
        if reference_hits is None:
            reference_hits = hits
        assert hits == reference_hits, f"{name} returned different results"
        modeled = model.seconds(counters)
        stats[name] = (counters, modeled)
        rows.append(
            [
                name,
                counters.node_tests,
                counters.elem_tests,
                counters.bytes_touched,
                modeled * 1e3,
            ]
        )

    emit(
        "Grid vs tree — 200 paper-selectivity queries "
        f"({len(items)} neuron segments):\n"
        + format_table(
            ["index", "node tests", "elem tests", "bytes", "modeled ms"], rows
        )
        + "\npaper: grids avoid the tree; CR-tree halves traffic but keeps overlap"
    )

    rtree_counters, rtree_cost = stats["R-tree"]
    crtree_counters, crtree_cost = stats["CR-tree"]
    grid_counters, grid_cost = stats["Uniform grid"]

    # CR-tree: less memory traffic, but tree tests remain (the 2x ceiling).
    assert crtree_counters.bytes_touched < rtree_counters.bytes_touched
    assert crtree_counters.node_tests > 0

    # Grids: no tree traversal at all, and cheaper modeled queries.
    assert grid_counters.node_tests == 0
    assert grid_cost < rtree_cost
