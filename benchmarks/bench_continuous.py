"""Continuous queries: incremental maintenance vs per-tick recompute.

The continuous tier's performance claim: at simulation churn rates (≤ 10 % of
objects move per tick) maintaining a standing result from the tick's affected
set alone beats re-answering from a throwaway rebuild — the recompute policy
pays O(n) per tick for the rebuild no matter how little moved, while the
incremental policy pays O(churn) grid updates plus membership patches.

The bench pins it at the paper's analysis scale (n=100k moving objects,
10 % churn) by running the *same* update sequence through two sessions with
the policy pinned, and asserting incremental sustains ≥ 3x the ticks/second
of recompute at full scale.  Delta streams from both policies are checked
identical at quick scale (the full exactness grid lives in
``tests/test_continuous.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_continuous.py          # full scale
    PYTHONPATH=src python benchmarks/bench_continuous.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_continuous.py``),
where it runs at quick scale and checks correctness, not wall-clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit
from repro import AABB, ContinuousRangeQuery, ContinuousSession
from repro.analysis.reporting import format_table
from repro.analysis.session_report import continuous_report

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, QUICK_N = 100_000, 5_000
TICKS = 5
CHURN = 0.10  # fraction of objects moved per tick
EXTENT = 0.8
SUBSCRIPTIONS = 8


def build_items(n: int, seed: int = 17) -> list[tuple[int, AABB]]:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 100.0 - EXTENT, size=(n, 3))
    return [
        (eid, AABB(lo[eid], lo[eid] + EXTENT)) for eid in range(n)
    ]


def make_tick_updates(
    items: dict[int, AABB], tick: int, seed: int = 29
) -> list[tuple[int, AABB, AABB]]:
    """One tick's drift: CHURN·n objects shift by a small random step."""
    rng = np.random.default_rng(seed + tick)
    n = len(items)
    moved = rng.choice(n, size=int(n * CHURN), replace=False)
    steps = rng.uniform(-0.5, 0.5, size=(len(moved), 3))
    updates = []
    for eid, step in zip(moved.tolist(), steps):
        old = items[eid]
        lo = np.clip(np.asarray(old.lo) + step, 0.0, 100.0 - EXTENT)
        updates.append((eid, old, AABB(lo, lo + EXTENT)))
    return updates


def subscription_boxes(seed: int = 43) -> list[AABB]:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(5.0, 75.0, size=(SUBSCRIPTIONS, 3))
    return [AABB(l, l + 20.0) for l in lo]


def run_policy(policy: str, n: int) -> tuple[float, ContinuousSession, list]:
    """Drive TICKS of drift through one pinned-policy session; returns
    (seconds spent in tick(), the session, per-subscription delta streams)."""
    items = dict(build_items(n))
    session = ContinuousSession(list(items.items()), UNIVERSE, policy=policy)
    subs = [session.subscribe(ContinuousRangeQuery(box)) for box in subscription_boxes()]
    elapsed = 0.0
    for tick in range(TICKS):
        updates = make_tick_updates(items, tick)
        for eid, _, new in updates:
            items[eid] = new
        start = time.perf_counter()
        session.tick(updates)
        elapsed += time.perf_counter() - start
    return elapsed, session, [sub.deltas for sub in subs]


def run(quick: bool = False) -> dict[str, float]:
    n = QUICK_N if quick else FULL_N
    results: dict[str, tuple[float, ContinuousSession, list]] = {}
    for policy in ("recompute", "incremental"):
        results[policy] = run_policy(policy, n)

    recompute_s, recompute_session, recompute_deltas = results["recompute"]
    incremental_s, incremental_session, incremental_deltas = results["incremental"]
    speedup = recompute_s / incremental_s if incremental_s else float("inf")

    # Same update sequence → the two policies must emit identical streams.
    assert incremental_deltas == recompute_deltas, (
        "incremental and recompute delta streams diverged"
    )

    emit(
        f"Continuous queries — n={n:,}, {TICKS} ticks, "
        f"{CHURN:.0%} churn, {SUBSCRIPTIONS} standing range queries\n"
        + format_table(
            ["policy", "tick wall (s)", "ticks/s", "vs recompute"],
            [
                ["recompute", recompute_s, TICKS / recompute_s, 1.0],
                ["incremental", incremental_s, TICKS / incremental_s, speedup],
            ],
        )
        + "\n\nincremental session telemetry\n"
        + continuous_report(incremental_session)
    )
    return {
        "recompute_s": recompute_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
        "deltas": float(incremental_session.stats.deltas),
    }


def test_continuous_bench_quick_scale():
    """Harness smoke: both policies agree delta-for-delta at quick scale."""
    results = run(quick=True)
    assert results["deltas"] == TICKS * SUBSCRIPTIONS
    assert results["speedup"] > 1.0  # maintaining beats rebuilding even small


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (5k)")
    args = parser.parse_args()
    results = run(quick=args.quick)
    if args.quick:
        return
    # The acceptance bar: at ≤ 10 % churn and 100k objects, incremental
    # maintenance must be at least 3x faster than per-tick recompute.
    assert results["speedup"] >= 3.0, (
        f"incremental speedup {results['speedup']:.1f}x below the 3x bar"
    )


if __name__ == "__main__":
    main()
