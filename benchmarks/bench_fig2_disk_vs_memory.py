"""Figure 2 — R-tree query time breakdown: disk vs memory.

Paper: 200 queries (selectivity 5×10⁻⁴ %) on a 200 M-element R-tree take
2253 s on disk with **96.7 % of time reading data**, and 40 s in memory with
**3.3 % reading / 95.3 % computing**.

Reproduction: the same experiment design at harness scale, with the disk
R-tree running over the simulated page store (cold cache, cleaned between
queries — the paper's protocol) and both sides priced by the calibrated cost
models.  Shape assertions: reading dominates on disk, computation dominates
in memory, and the modeled in-memory run is orders of magnitude faster.
"""

from __future__ import annotations

from repro.analysis.breakdown import disk_vs_memory_report
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.rtree import RTree
from repro.instrumentation.costmodel import READING, DiskCostModel, MemoryCostModel

from bench_common import emit


def _run_queries(index, queries, clear_cache=False):
    before = index.counters.snapshot()
    results = 0
    for query in queries:
        if clear_cache:
            index.clear_cache()
        results += len(index.range_query(query))
    return index.counters.diff(before), results


def test_fig2_disk_vs_memory(neuron_items, paper_queries, benchmark):
    disk = DiskRTree(max_entries=64, buffer_pages=64)
    disk.bulk_load(neuron_items)
    memory = RTree(max_entries=16)
    memory.bulk_load(neuron_items)

    disk_counters, disk_hits = _run_queries(disk, paper_queries, clear_cache=True)

    def run_memory():
        return _run_queries(memory, paper_queries)

    memory_counters, memory_hits = benchmark.pedantic(run_memory, rounds=1, iterations=1)
    assert disk_hits == memory_hits  # same answers on both substrates

    disk_model = DiskCostModel()
    memory_model = MemoryCostModel()
    disk_breakdown = disk_model.breakdown(disk_counters).coarse()
    memory_breakdown = memory_model.breakdown(memory_counters).coarse()

    emit(
        "Figure 2 — query execution time breakdown (200 queries, "
        f"{len(neuron_items)} elements, selectivity 5e-4 %):\n"
        + disk_vs_memory_report(disk_counters, memory_counters)
        + "\npaper: disk 96.7 % reading / memory 3.3 % reading, 2253 s -> 40 s"
    )

    # Shape assertions (the paper's claims).
    assert disk_breakdown.fraction(READING) > 0.85, "disk must be read-dominated"
    assert memory_breakdown.fraction(READING) < 0.15, "memory must be compute-dominated"
    speedup = disk_breakdown.total() / max(memory_breakdown.total(), 1e-12)
    assert speedup > 10, f"memory should be order(s) of magnitude faster, got {speedup:.1f}x"
