"""Section 4.3 — dataset-as-index (DLS / OCTOPUS / FLAT) under deformation.

Paper: "If an index uses the dataset directly, then it does not need to
perform any updates" — DLS's approximate index "only needs to be updated
infrequently"; OCTOPUS extends the idea to concave meshes; FLAT transfers it
to non-mesh data.

Reproduction: a deforming tetrahedral mesh queried over several steps.  The
R-tree baseline must be rebuilt (or updated) every step to stay correct; the
connectivity walkers run on the live geometry with **zero** maintenance.  We
report per-step maintenance cost and query agreement, plus the concave-mesh
completeness contrast between single-walk DLS and multi-seed OCTOPUS.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.geometry.aabb import AABB
from repro.indexes.rtree import RTree
from repro.mesh.dls import DLS, WalkStuckError
from repro.mesh.generators import carve_hole, structured_tet_mesh
from repro.mesh.octopus import Octopus

from bench_common import emit

STEPS = 4
QUERIES_PER_STEP = 20


def _queries(mesh, count, seed):
    rng = np.random.default_rng(seed)
    hull = mesh.hull()
    lo = np.asarray(hull.lo)
    hi = np.asarray(hull.hi)
    out = []
    for _ in range(count):
        start = rng.uniform(lo, hi)
        end = np.minimum(start + rng.uniform(0.5, 1.5, 3), hi)
        out.append(AABB(start, end))
    return out


def test_mesh_indexes_need_no_maintenance(benchmark):
    mesh = structured_tet_mesh(8, 8, 8)
    dls = DLS(mesh)
    octopus = Octopus(mesh)
    rng = np.random.default_rng(1)

    def run():
        maintenance_rtree = 0.0
        query_agreement = 0
        total_queries = 0
        for step in range(STEPS):
            mesh.jitter(0.004, rng)  # plasticity-scale deformation
            start = time.perf_counter()
            rtree = RTree(max_entries=16)
            rtree.bulk_load([(c.cid, mesh.bounds(c.cid)) for c in mesh.cells])
            maintenance_rtree += time.perf_counter() - start
            for query in _queries(mesh, QUERIES_PER_STEP, seed=step):
                expected = sorted(rtree.range_query(query))
                assert sorted(dls.range_query(query)) == expected
                assert sorted(octopus.range_query(query)) == expected
                query_agreement += 1
                total_queries += 1
        return maintenance_rtree, query_agreement, total_queries

    maintenance_rtree, agreed, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreed == total

    emit(
        f"Mesh queries under deformation — {len(mesh)} tets, {STEPS} steps, "
        f"{QUERIES_PER_STEP} queries/step:\n"
        + format_table(
            ["index", "maintenance s (total)", "queries correct"],
            [
                ["R-tree (rebuild per step)", maintenance_rtree, f"{agreed}/{total}"],
                ["DLS (connectivity walk)", 0.0, f"{agreed}/{total}"],
                ["OCTOPUS (surface seeds)", 0.0, f"{agreed}/{total}"],
            ],
        )
        + "\npaper: dataset-as-index needs no updates; the dataset IS current"
    )
    assert maintenance_rtree > 0.0


def test_octopus_handles_concave_where_dls_fails(benchmark):
    convex = structured_tet_mesh(8, 8, 4)
    concave = carve_hole(convex, AABB((3.0, 1.0, -1.0), (5.0, 7.0, 5.0)))
    octopus = Octopus(concave)
    dls = DLS(concave)

    queries = _queries(concave, 60, seed=9)

    def run():
        octopus_ok = 0
        dls_ok = 0
        dls_failures = 0
        for query in queries:
            expected = sorted(concave.scan_range(query))
            if sorted(octopus.range_query(query)) == expected:
                octopus_ok += 1
            try:
                if sorted(dls.range_query(query)) == expected:
                    dls_ok += 1
            except WalkStuckError:
                dls_failures += 1
        return octopus_ok, dls_ok, dls_failures

    octopus_ok, dls_ok, dls_failures = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Concave mesh ({len(concave)} tets, carved channel), 60 queries:\n"
        + format_table(
            ["index", "correct", "stuck walks"],
            [
                ["OCTOPUS", f"{octopus_ok}/60", 0],
                ["DLS (convex-only)", f"{dls_ok}/60", dls_failures],
            ],
        )
        + "\npaper: 'DLS only works for convex meshes'; OCTOPUS 'supports concave'"
    )
    assert octopus_ok == 60, "OCTOPUS must be complete on concave meshes"
