"""Iterated spatial joins under simulation motion (§4.1 / Sowell et al.).

Paper: "The spatial join ... always depends on an index or similar data
structure ... Maintaining a data structure supporting the spatial join will
thus almost always pay off."

Reproduction: a self-join (collision/synapse candidate set) maintained across
motion steps, comparing **recompute-per-step** against **incremental
maintenance** (grid absorbs the moves; only moved elements re-probe).  The
two strategies converge as the moving fraction approaches 1 (re-probing
everything *is* a recompute), so the bench sweeps the moving fraction —
mirroring the §4.1 crossover methodology.  Shape assertions: the strategies
agree exactly with the nested-loop oracle, and incremental wins decisively
when a minority of elements move.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.datasets.trajectories import BrownianMotion, apply_moves
from repro.joins.iterated import IteratedSelfJoin
from repro.instrumentation.counters import Counters
from repro.joins.strategies import NestedLoopJoin

from bench_common import emit

STEPS = 3
N = 6000
EPSILON = 0.1
MOVING_FRACTIONS = (0.05, 0.3, 1.0)


def _run(items, universe, strategy, fraction):
    join = IteratedSelfJoin(items, universe, strategy=strategy)
    live = dict(items)
    motion = BrownianMotion(
        sigma=0.025, universe=universe, moving_fraction=fraction, seed=5
    )
    start = time.perf_counter()
    for _ in range(STEPS):
        moves = motion.step(live)
        join.step(moves)
        apply_moves(live, moves)
    return (time.perf_counter() - start) / STEPS, join.pairs, live


def test_iterated_join_incremental_vs_recompute(neuron_dataset, benchmark):
    items = [(eid, box.expanded(EPSILON / 2)) for eid, box in neuron_dataset.items[:N]]
    universe = neuron_dataset.universe

    def run_sweep():
        rows = []
        winners = {}
        for fraction in MOVING_FRACTIONS:
            incremental_time, incremental_pairs, live = _run(
                items, universe, "incremental", fraction
            )
            recompute_time, recompute_pairs, _ = _run(
                items, universe, "recompute", fraction
            )
            assert incremental_pairs == recompute_pairs, "strategies must agree"
            expected = set(NestedLoopJoin().self_join(list(live.items()), Counters()))
            assert incremental_pairs == expected, "oracle mismatch"
            rows.append([f"{fraction:.0%}", incremental_time, recompute_time])
            winners[fraction] = incremental_time < recompute_time
        return rows, winners

    rows, winners = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        f"Iterated self-join — {N} elements, {STEPS} steps, moving-fraction sweep:\n"
        + format_table(
            ["moving fraction", "incremental s/step", "recompute s/step"], rows
        )
        + "\npaper: maintaining the join structure 'will almost always pay off'"
    )
    assert winners[0.05], "incremental must win when few elements move"
