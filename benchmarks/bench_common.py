"""Shared workload builders for the benchmark harness.

This module deliberately is **not** named ``conftest.py``: pytest imports
conftest files under the bare module name ``conftest``, so a helper module
with that name in ``benchmarks/`` would shadow ``tests/conftest.py`` (or vice
versa) whenever both directories are collected in one run.  The fixtures are
re-exported by ``benchmarks/conftest.py``; bench modules import the plain
helpers (``emit`` et al.) from here.

Scale note: the paper's Appendix A uses 200 M elements (9 GB) on a 2013 SAS
array; this harness runs the same *experiment designs* at 10⁴–10⁵ elements so
that each bench finishes in seconds in pure Python.  Every bench prints the
paper-style table/series it reproduces and asserts the claim's *shape* (who
wins, what dominates, where the crossover falls) so the reproduction is
checked, not just printed.
"""

from __future__ import annotations

import sys

import pytest

from repro.datasets.neuroscience import NeuronDataset, generate_neurons
from repro.datasets.queries import range_queries_for_selectivity
from repro.geometry.aabb import AABB

# One shared neuron dataset per session: ~20k capsule segments.
_NEURONS = 250
_SEGMENTS = 80


@pytest.fixture(scope="session")
def neuron_dataset() -> NeuronDataset:
    return generate_neurons(neurons=_NEURONS, segments_per_neuron=_SEGMENTS, seed=42)


@pytest.fixture(scope="session")
def neuron_items(neuron_dataset):
    return neuron_dataset.items


@pytest.fixture(scope="session")
def paper_queries(neuron_dataset):
    """200 queries at the paper's 5×10⁻⁴ % volume selectivity."""
    return range_queries_for_selectivity(
        200, neuron_dataset.universe, selectivity=5e-6, seed=7
    )


REPORT_PATH = "benchmark_report.txt"


def emit(text: str) -> None:
    """Print a report and persist it to ``benchmark_report.txt``.

    pytest captures per-test output, so the harness both writes to stderr
    (visible with ``-s``) and appends to a report file that survives any
    capture mode.
    """
    sys.stderr.write("\n" + text + "\n")
    sys.stderr.flush()
    with open(REPORT_PATH, "a") as report:
        report.write(text + "\n\n")


# -- shared uniform workloads (the n-elements / m-queries acceptance scale) --

import numpy as np  # noqa: E402  (kept with its helpers, below the fixtures)


def uniform_box_items(rng: np.random.Generator, n: int) -> list:
    """n small uniform boxes in the benches' canonical 100³ universe."""
    lo = rng.uniform(0.0, 99.0, size=(n, 3))
    hi = np.minimum(lo + rng.uniform(0.05, 1.0, size=(n, 3)), 100.0)
    return [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]


def range_window_workload(n: int, m: int, seed: int = 0):
    """(items, (m, 2, 3) synapse-scale query windows), one RNG stream."""
    rng = np.random.default_rng(seed)
    items = uniform_box_items(rng, n)
    q_lo = rng.uniform(0.0, 98.0, size=(m, 3))
    return items, np.stack([q_lo, np.minimum(q_lo + 2.0, 100.0)], axis=1)


def knn_point_workload(n: int, m: int, seed: int = 0):
    """(items, (m, 3) probe points), one RNG stream."""
    rng = np.random.default_rng(seed)
    items = uniform_box_items(rng, n)
    return items, rng.uniform(0.0, 100.0, size=(m, 3))
