"""Section 3.3 — the grid-resolution trade-off and the analytical model.

Paper: "a too coarse grained grid means that too many elements need to be
tested for intersection ... the optimal resolution depends on the
distribution of location and size of the spatial elements" and "an analytical
model needs to be developed to determine it"; mixed query sizes motivate
"several uniform grids each with a different resolution".

Reproduction: sweep the cell size across two orders of magnitude, measure
modeled query cost, and check that the analytical model's predicted optimum
lands in the empirically cheap region.  Then show the multi-resolution grid
beating every single-resolution grid on a *mixed-size* query workload.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.resolution import GridCostModel
from repro.core.uniform_grid import UniformGrid
from repro.datasets.queries import random_range_queries
from repro.instrumentation.costmodel import MemoryCostModel

from bench_common import emit


def _modeled_query_cost(index, queries):
    before = index.counters.snapshot()
    for query in queries:
        index.range_query(query)
    return MemoryCostModel().seconds(index.counters.diff(before))


def test_resolution_sweep_and_model(neuron_dataset, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    mean_extent, _ = neuron_dataset.element_extent_stats()
    query_extent = 2.0
    queries = random_range_queries(100, universe, extent=query_extent, seed=3)

    model = GridCostModel(
        n=len(items),
        universe_extent=max(universe.extents()),
        avg_element_extent=mean_extent,
        avg_query_extent=query_extent,
    )
    predicted = model.optimal_cell_size()

    cells = [predicted / 8, predicted / 4, predicted / 2, predicted, predicted * 2,
             predicted * 4, predicted * 8]

    def sweep():
        costs = {}
        for cell in cells:
            grid = UniformGrid(universe=universe, cell_size=cell)
            grid.bulk_load(items)
            costs[cell] = _modeled_query_cost(grid, queries)
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best_cell = min(costs, key=costs.get)

    rows = [
        [f"{cell:.3f}", costs[cell] * 1e3, "<- model optimum" if cell == predicted else ""]
        for cell in cells
    ]
    emit(
        "Resolution sweep — modeled query cost vs cell size "
        f"(model predicts {predicted:.3f}):\n"
        + format_table(["cell size", "modeled ms", ""], rows)
    )

    # The model's optimum must be within 2 sweep steps of the empirical best.
    assert costs[predicted] <= 2.5 * costs[best_cell], (
        f"model optimum {predicted:.3f} is far off the empirical best {best_cell:.3f}"
    )


def test_multires_beats_single_resolution_on_mixed_queries(neuron_dataset, benchmark):
    items = neuron_dataset.items
    universe = neuron_dataset.universe
    small = random_range_queries(60, universe, extent=0.8, seed=4)
    large = random_range_queries(10, universe, extent=18.0, seed=5)
    mixed = small + large

    def run():
        multi = MultiResolutionGrid(universe=universe, levels=4)
        multi.bulk_load(items)
        multi_cost = _modeled_query_cost(multi, mixed)
        single_costs = {}
        for cell in (0.5, 2.0, 8.0):
            grid = UniformGrid(universe=universe, cell_size=cell)
            grid.bulk_load(items)
            single_costs[cell] = _modeled_query_cost(grid, mixed)
        return multi_cost, single_costs

    multi_cost, single_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["multi-resolution (4 levels)", multi_cost * 1e3]]
    rows += [[f"single grid, cell {cell}", cost * 1e3] for cell, cost in single_costs.items()]
    emit(
        "Mixed query sizes — multi-resolution vs single grids:\n"
        + format_table(["index", "modeled ms"], rows)
    )
    # The multigrid must at least beat the WORST single resolution — i.e.
    # it removes the resolution-guessing risk the paper describes.
    assert multi_cost < max(single_costs.values())
