"""Per-query loop vs batched kNN — the tentpole claim of the batch-kNN PR.

Nearest-synapse and nearest-segment lookups dominate the paper's analysis
phase: they are issued by the million per simulation step, and after PR 1
only LinearScan answered them at array speed.  This bench builds the uniform
n=100k / m=10k workload and times, per index:

* ``loop``   — one scalar ``knn`` call per probe point;
* ``first``  — a cold ``BatchQueryEngine.knn`` over the whole point array
  (pays any one-time dense packing: the grid snapshot, tree entry arrays);
* ``steady`` — repeated batches against an unmutated index, the paper's
  analysis regime (visualization frames, monitors, synapse probes).

The acceptance bar asserted at full scale: steady-state batched kNN on
**UniformGrid** and on the **R-tree** beats the per-query loop by >= 3x.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_knn.py          # full scale
    PYTHONPATH=src python benchmarks/bench_batch_knn.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_batch_knn.py``),
where it runs at quick scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit, knn_point_workload
from repro.analysis.reporting import format_table
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.uniform_grid import UniformGrid
from repro.engine import BatchQueryEngine
from repro.geometry.aabb import AABB
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000
K = 8


def bench_index(name, index, items, points, loop_cap, verify_sample=25, steady_rounds=3):
    """Times the scalar loop (possibly on a subsample) and the batch regimes.

    The loop is pure-Python per query, so slow contenders are measured on
    ``loop_cap`` probes and compared by throughput; the batch always runs
    the full array.  ``first`` is a cold batch including one-time packing;
    ``steady`` amortizes over repeated batches on the unmutated index.
    """
    index.bulk_load(items)
    engine = BatchQueryEngine.kernel(index, dedup=False)
    loop_points = points[:loop_cap]

    start = time.perf_counter()
    looped = [index.knn(tuple(p), K) for p in loop_points]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = engine.knn(points, K)
    first_seconds = time.perf_counter() - start

    # Best-of-rounds: the steady regime asks "how fast can a warm batch
    # run", so scheduler noise in a round shouldn't count against it.
    steady_seconds = float("inf")
    for _ in range(steady_rounds):
        start = time.perf_counter()
        engine.knn(points, K)
        steady_seconds = min(steady_seconds, time.perf_counter() - start)

    for i in np.linspace(0, len(loop_points) - 1, verify_sample).astype(int):
        got = [(round(d, 6), e) for d, e in batched[i]]
        expected = [(round(d, 6), e) for d, e in looped[i]]
        assert got == expected, f"{name}: kNN mismatch on probe {i}"

    loop_qps = len(loop_points) / loop_seconds
    return {
        "index": name,
        "loop qps": loop_qps,
        "first qps": len(points) / first_seconds,
        "steady qps": len(points) / steady_seconds,
        "first speedup": (len(points) / first_seconds) / loop_qps,
        "steady speedup": (len(points) / steady_seconds) / loop_qps,
    }


def run(quick: bool = False) -> dict[str, float]:
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    items, points = knn_point_workload(n, m)
    # The scan is O(n) per query in both regimes (pure Python looped, m*n
    # matrix batched); cap its query counts so the bench stays minutes-free
    # — throughput comparisons remain fair.  The indexed contenders run the
    # full batch and a capped pure-Python loop.
    contenders = [
        ("LinearScan", LinearScan(), 100, 1_000),
        ("UniformGrid", UniformGrid(universe=UNIVERSE), 2_000, None),
        ("Multi-res grid", MultiResolutionGrid(universe=UNIVERSE, levels=3), 2_000, None),
        ("R-tree", RTree(max_entries=16), 2_000, None),
    ]
    rows = []
    speedups: dict[str, float] = {}
    for name, index, loop_cap, batch_cap in contenders:
        batch_points = points if batch_cap is None else points[:batch_cap]
        result = bench_index(name, index, items, batch_points, min(loop_cap, m))
        speedups[name] = result["steady speedup"]
        rows.append(
            [
                name,
                f"{result['loop qps']:,.0f}",
                f"{result['first qps']:,.0f}",
                f"{result['steady qps']:,.0f}",
                f"{result['steady speedup']:.1f}x",
            ]
        )
    emit(
        f"Batched vs per-query kNN (k={K}) — n={n:,} elements, m={m:,} probes\n"
        "('first batch' pays any one-time dense packing; 'steady' is the\n"
        "paper's analysis regime: repeated batches on an unmutated index)\n"
        + format_table(
            ["index", "per-query qps", "first batch qps", "steady qps", "steady speedup"],
            rows,
        )
    )
    return speedups


def test_batch_knn_beats_per_query_loop():
    """Quick-scale shape check for the benchmark harness run."""
    speedups = run(quick=True)
    assert speedups["UniformGrid"] > 1.0
    assert speedups["R-tree"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    speedups = run(quick=args.quick)
    if not args.quick:
        # The acceptance bar: steady-state batching must buy >= 3x on the
        # paper's primary in-memory candidate AND the reference dynamic tree.
        for name in ("UniformGrid", "R-tree"):
            assert speedups[name] >= 3.0, f"{name} batch speedup {speedups[name]:.1f}x < 3x"
        print(
            "OK: steady-state batched kNN speedup "
            f"UniformGrid {speedups['UniformGrid']:.1f}x, "
            f"R-tree {speedups['R-tree']:.1f}x (>= 3x)"
        )


if __name__ == "__main__":
    main()
