"""Figure 3 — in-memory R-tree query breakdown by computation kind.

Paper: in memory ~80 % of query time is intersection tests — 55 % against
the tree structure, 25 % against elements — with reading data at 3.3 % and
the rest bookkeeping.

Reproduction: same query workload as Figure 2; counters attribute every
operation, and the memory cost model prices them into the paper's four
categories.  Shape assertions: intersection tests dominate (> 2/3), tree
tests are a major share, reading data is small.
"""

from __future__ import annotations

from repro.analysis.breakdown import memory_breakdown_report
from repro.indexes.rtree import RTree
from repro.instrumentation.costmodel import (
    ELEM_TESTS,
    READING,
    TREE_TESTS,
    MemoryCostModel,
)

from bench_common import emit


def test_fig3_memory_breakdown(neuron_items, paper_queries, benchmark):
    index = RTree(max_entries=16)
    index.bulk_load(neuron_items)

    def run():
        before = index.counters.snapshot()
        for query in paper_queries:
            index.range_query(query)
        return index.counters.diff(before)

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    breakdown = MemoryCostModel().breakdown(counters)

    emit(
        "Figure 3 — in-memory R-tree breakdown "
        f"({len(neuron_items)} elements, 200 queries):\n"
        + memory_breakdown_report(counters)
        + "\npaper: ~3.3 % reading, ~55 % tree tests, ~25 % element tests"
    )

    tests_share = breakdown.fraction(TREE_TESTS) + breakdown.fraction(ELEM_TESTS)
    assert tests_share > 0.65, f"intersection tests must dominate, got {tests_share:.2f}"
    assert breakdown.fraction(READING) < 0.15
    assert breakdown.fraction(TREE_TESTS) > 0.25, "tree traversal must be a major share"
    assert counters.node_tests > 0 and counters.elem_tests > 0
