"""Ablation — node layout and entry compression in the CPU cache (§3.3).

Paper: cache-conscious layouts (nodes as cache-line multiples, CR-tree
quantized entries) reduce the memory traffic of in-memory indexes; "the
CR-Tree is a step in the right direction".

Reproduction: the same R-tree and query workload replayed through the
set-associative cache simulator under three configurations —

1. scattered placement, full 56 B entries (a dynamically built tree);
2. BFS cache-line-aligned placement, full entries;
3. BFS placement with CR-tree-width 20 B quantized entries.

Shape assertions: each step reduces cache misses.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.indexes.rtree import RTree
from repro.storage.cache import CacheSimulator
from repro.storage.layout import assign_addresses, replay_queries

from bench_common import emit

CACHE_KB = 256  # small L2 slice so the working set does not trivially fit


def _fresh_cache() -> CacheSimulator:
    return CacheSimulator(capacity_bytes=CACHE_KB * 1024, line_bytes=64, associativity=8)


def test_cache_layout_and_compression(neuron_items, paper_queries, benchmark):
    tree = RTree(max_entries=16)
    tree.bulk_load(neuron_items)
    queries = paper_queries[:100]

    configurations = [
        ("scattered, 56 B entries", "scattered", 56),
        ("BFS-aligned, 56 B entries", "bfs", 56),
        ("BFS-aligned, 20 B quantized", "bfs", 20),
    ]

    def run_all():
        results = {}
        for label, layout, entry_bytes in configurations:
            addresses = assign_addresses(tree, layout=layout, entry_bytes=entry_bytes)
            cache = _fresh_cache()
            misses = replay_queries(tree, queries, addresses, cache)
            results[label] = (misses, cache.miss_rate())
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label, misses, rate]
        for label, (misses, rate) in results.items()
    ]
    emit(
        f"Cache replay — {len(neuron_items)} elements, 100 queries, "
        f"{CACHE_KB} KB 8-way cache:\n"
        + format_table(["configuration", "misses", "miss rate"], rows)
        + "\npaper: cache-line-multiple nodes + compression cut memory traffic"
    )

    scattered = results["scattered, 56 B entries"][0]
    aligned = results["BFS-aligned, 56 B entries"][0]
    compressed = results["BFS-aligned, 20 B quantized"][0]
    assert aligned <= scattered, "aligned placement must not miss more"
    assert compressed < aligned, "compression must cut misses further"
