"""Ablation — node size for in-memory trees (§3.3, first research direction).

Paper: "Indexes used in memory must be optimized for memory hierarchies by
making the size of their nodes a multiple of the cache block size.  Node
sizes substantially smaller than used on disk (on disk sizes 4KB or bigger
are typically used) achieve good performance (between 640 Bytes and 1 KB)."

Reproduction: sweep the R-tree fanout from cache-line-sized nodes to
disk-page-sized nodes and price the same query workload with the memory cost
model.  Shape assertion: the disk-era node size (4 KB ≈ 70 entries) is NOT
optimal in memory — some smaller node wins.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.indexes.rtree import RTree
from repro.instrumentation.costmodel import MemoryCostModel

from bench_common import emit

# entries -> approx node bytes (3-d: 56 B/entry + header)
FANOUTS = (4, 8, 16, 32, 70, 140)


def test_node_size_sweep(neuron_items, paper_queries, benchmark):
    model = MemoryCostModel()

    def sweep():
        costs = {}
        for fanout in FANOUTS:
            tree = RTree(max_entries=fanout)
            tree.bulk_load(neuron_items)
            before = tree.counters.snapshot()
            for query in paper_queries:
                tree.range_query(query)
            costs[fanout] = model.seconds(tree.counters.diff(before))
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [fanout, 16 + fanout * 56, costs[fanout] * 1e3]
        for fanout in FANOUTS
    ]
    emit(
        "Ablation — R-tree node size in memory (200 queries):\n"
        + format_table(["max entries", "approx node bytes", "modeled ms"], rows)
        + "\npaper: in-memory optimum is well below the 4 KB disk page"
    )

    disk_size_cost = costs[70]  # ~4 KB nodes, the disk default
    best = min(costs.values())
    assert best < disk_size_cost, "a sub-page node size must win in memory"
    best_fanout = min(costs, key=costs.get)
    assert best_fanout < 70
