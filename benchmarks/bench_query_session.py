"""Session-layer overhead and sharded-executor scaling.

The QuerySession is the single public entry point for every query (ISSUE 3);
its promise is that the convenience layer is free.  This bench pins two
claims at the paper's analysis scale (n=100k elements / m=10k queries):

* **overhead** — ``QuerySession.range_query`` / ``.knn`` throughput is
  within 10% of driving the raw kernel-layer ``BatchQueryEngine`` directly
  (asserted at full scale);
* **sharding** — the ``ShardedExecutor`` beats single-process batching with
  2 workers (asserted at full scale when the hardware actually has >= 2
  CPUs; reported otherwise — a fork pool cannot beat one core with one
  core).

Usage::

    PYTHONPATH=src python benchmarks/bench_query_session.py          # full scale
    PYTHONPATH=src python benchmarks/bench_query_session.py --quick  # CI smoke

Also collectable by pytest (``python -m pytest benchmarks/bench_query_session.py``),
where it runs at quick scale and checks shapes, not wall-clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit, range_window_workload
from repro import AABB, QuerySession, ShardedExecutor, UniformGrid
from repro.analysis.reporting import format_table
from repro.engine import BatchQueryEngine
from repro.engine.session import _fork_is_safe

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
FULL_N, FULL_M = 100_000, 10_000
QUICK_N, QUICK_M = 10_000, 1_000


def best_of(fn, rounds: int = 3) -> float:
    """Minimum wall-clock over ``rounds`` runs — the noise-robust statistic
    for an overhead ratio."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(quick: bool = False) -> dict[str, float]:
    n, m = (QUICK_N, QUICK_M) if quick else (FULL_N, FULL_M)
    items, queries = range_window_workload(n, m)
    points = queries[:, 0, :]
    grid = UniformGrid(universe=UNIVERSE)
    grid.bulk_load(items)

    engine = BatchQueryEngine.kernel(grid, dedup=False)
    session = QuerySession(grid, dedup=False)
    engine.range_query(queries)  # warm the packed snapshot for everyone
    expected = engine.range_query(queries)
    assert session.range_query(queries) == expected, "session diverged from engine"

    raw_range = best_of(lambda: engine.range_query(queries))
    ses_range = best_of(lambda: session.range_query(queries))
    raw_knn = best_of(lambda: engine.knn(points, 8))
    ses_knn = best_of(lambda: session.knn(points, 8))

    rows = [
        ["range", m / raw_range, m / ses_range, (ses_range / raw_range - 1.0) * 100.0],
        ["knn k=8", m / raw_knn, m / ses_knn, (ses_knn / raw_knn - 1.0) * 100.0],
    ]

    cpus = os.cpu_count() or 1
    sharded_rows = []
    sharded_times: dict[int, float] = {}
    for workers in (2, 4):
        executor = ShardedExecutor(workers=workers, min_shard=max(m // (2 * workers), 1))
        sharded = QuerySession(grid, dedup=False, executor=executor)
        assert sharded.range_query(queries) == expected, "sharded diverged"
        sharded_times[workers] = best_of(lambda: sharded.range_query(queries))
        sharded_rows.append(
            [
                f"sharded w={workers}",
                m / sharded_times[workers],
                raw_range / sharded_times[workers],
            ]
        )

    emit(
        f"QuerySession overhead vs raw BatchQueryEngine — n={n:,}, m={m:,}\n"
        + format_table(
            ["workload", "raw qps", "session qps", "overhead %"], rows
        )
        + "\n\n"
        + f"ShardedExecutor vs single-process batching ({cpus} CPUs visible)\n"
        + format_table(
            ["strategy", "qps", "speedup vs raw batch"],
            [["raw batch", m / raw_range, 1.0], *sharded_rows],
        )
    )
    return {
        "range_overhead": ses_range / raw_range - 1.0,
        "knn_overhead": ses_knn / raw_knn - 1.0,
        "sharded2_speedup": raw_range / sharded_times[2],
        "cpus": float(cpus),
    }


def test_session_matches_engine_at_quick_scale():
    """Harness smoke: the session stays correct and in the same ballpark."""
    results = run(quick=True)
    # Quick scale is noise-dominated; just bound it loosely.
    assert results["range_overhead"] < 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (10k/1k)")
    args = parser.parse_args()
    results = run(quick=args.quick)
    if args.quick:
        return
    # The ISSUE 3 acceptance bars, at full scale only.
    assert results["range_overhead"] < 0.10, (
        f"session range overhead {results['range_overhead']:.1%} >= 10%"
    )
    assert results["knn_overhead"] < 0.10, (
        f"session knn overhead {results['knn_overhead']:.1%} >= 10%"
    )
    print(
        f"OK: session overhead range {results['range_overhead']:.1%}, "
        f"knn {results['knn_overhead']:.1%} (< 10%)"
    )
    # Mirror ShardedExecutor's own gate: where forking is unsafe it falls
    # back to single-process execution, so a speedup assertion would be
    # comparing the same code path against itself.
    if results["cpus"] >= 2 and _fork_is_safe():
        assert results["sharded2_speedup"] > 1.0, (
            f"sharded (2 workers) speedup {results['sharded2_speedup']:.2f}x <= 1x "
            f"on {results['cpus']:.0f} CPUs"
        )
        print(f"OK: sharded 2-worker speedup {results['sharded2_speedup']:.2f}x (> 1x)")
    else:
        print(
            f"SKIP sharded assertion: {results['cpus']:.0f} CPU(s) visible — "
            f"measured {results['sharded2_speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
