"""Out-of-core PBSM under a memory budget: inline, and sharded over mmap.

The paper's framing: the target datasets "exceed the memory of a single
machine by definition", so a join must degrade gracefully when its working
set does not fit.  ``pbsm_spill`` (the ISSUE 5 tentpole) runs the exact same
partition/merge algorithm as the in-memory ``pbsm`` strategy, but stages it
through the memory governor + spill manager so no phase holds more than a
quarter of the budget.  ISSUE 9 adds the sharded tier on top: the parent
partitions once, spills through the zero-copy ``MappedPageStore``, and pool
workers map the spill file read-only and merge whole tile runs in parallel.

The measurement: |A| = |B| = n, the session budget pinned to **25% of the
estimated in-memory working set** (`repro.exec.pbsm_working_set_bytes`), so
the planner must route to the spilling strategy and the strategy must
actually spill.  Asserted at every scale:

* both the inline and the sharded pair lists are **identical** to the
  in-memory vectorized PBSM;
* the planner routed to ``pbsm_spill``, spill counters are live, and the
  sharded run dispatched tile runs with zero-copy mapped reads;
* at full scale only: inline slowdown vs in-memory PBSM is ≤ 5x (ISSUE 5),
  and — **on ≥ 4 cores only** — the sharded external join is ≥ 2.5x the
  single-worker external join (ISSUE 9).

Every run writes machine-readable results (qps, scaling factor, spill
bytes) to ``BENCH_spill_joins.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_spill_joins.py          # full scale
    PYTHONPATH=src python benchmarks/bench_spill_joins.py --quick  # CI smoke

Also collectable by pytest, where it runs at quick scale and checks
exactness + routing, not wall-clock.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit
from repro.analysis.reporting import format_table
from repro.analysis.session_report import join_report
from repro.exec import pbsm_working_set_bytes
from repro.geometry.aabb import AABB
from repro.joins import JoinSession, PairJoinSpec, ShardedJoinExecutor

FULL_N = 100_000
QUICK_N = 8_000
BUDGET_SHARE = 0.25  # the ISSUE 5 bar: budget <= 25% of the working set
SCALING_BAR = 2.5  # the ISSUE 9 bar, gated on >= 4 physical cores
JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_spill_joins.json"
)


def join_workload(n: int, seed: int = 0):
    """Two disjoint sets of synapse-scale boxes in the canonical universe."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 99.0, size=(2 * n, 3))
    hi = np.minimum(lo + rng.uniform(0.05, 1.0, size=(2 * n, 3)), 100.0)
    items = [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]
    return items[:n], items[n:]


def run(quick: bool = False) -> dict:
    n = QUICK_N if quick else FULL_N
    cores = os.cpu_count() or 1
    workers = max(2, min(cores, 8))
    side_a, side_b = join_workload(n)

    memory_session = JoinSession(strategy="pbsm")
    start = time.perf_counter()
    expected = memory_session.run(PairJoinSpec(side_a, side_b))
    memory_time = time.perf_counter() - start

    working_set = pbsm_working_set_bytes(n, n)
    budget = int(working_set * BUDGET_SHARE)

    with JoinSession(budget=budget) as session:
        start = time.perf_counter()
        pairs = session.run(PairJoinSpec(side_a, side_b))
        spill_time = time.perf_counter() - start
        inline_stats = session.stats
        assert pairs == expected, "pbsm_spill diverged from in-memory PBSM"
        assert inline_stats.strategy_runs.get("pbsm_spill") == 1, (
            f"planner did not route to pbsm_spill: {inline_stats.strategy_runs}"
        )
        assert inline_stats.tiles_spilled > 0 and inline_stats.spill_bytes_written > 0, (
            "budget was 25% of the working set but nothing spilled"
        )

    with JoinSession(
        budget=budget, executor=ShardedJoinExecutor(workers=workers)
    ) as session:
        start = time.perf_counter()
        sharded_pairs = session.run(PairJoinSpec(side_a, side_b))
        sharded_time = time.perf_counter() - start
        stats = session.stats
        report = join_report(session)
        assert sharded_pairs == expected, (
            "sharded pbsm_spill diverged from in-memory PBSM"
        )
        assert stats.tile_runs_dispatched > 0, "no tile runs reached the pool"
        assert stats.zero_copy_reads > 0, "workers did not map the spill file"

    slowdown = spill_time / max(memory_time, 1e-9)
    scaling = spill_time / max(sharded_time, 1e-9)
    results = {
        "bench": "spill_joins",
        "n_per_side": n,
        "quick": quick,
        "cores": cores,
        "workers": workers,
        "budget_bytes": budget,
        "working_set_bytes": working_set,
        "pairs": len(expected),
        "wall_seconds": {
            "pbsm_memory": memory_time,
            "pbsm_spill_inline": spill_time,
            "pbsm_spill_sharded": sharded_time,
        },
        "qps": {
            "pbsm_memory": 1.0 / max(memory_time, 1e-9),
            "pbsm_spill_inline": 1.0 / max(spill_time, 1e-9),
            "pbsm_spill_sharded": 1.0 / max(sharded_time, 1e-9),
        },
        "pairs_per_second": {
            "pbsm_spill_inline": len(pairs) / max(spill_time, 1e-9),
            "pbsm_spill_sharded": len(sharded_pairs) / max(sharded_time, 1e-9),
        },
        "spill_bytes": {
            "written": stats.spill_bytes_written,
            "read": stats.spill_bytes_read,
            "mapped": stats.mapped_bytes,
        },
        "tile_runs_dispatched": stats.tile_runs_dispatched,
        "zero_copy_reads": stats.zero_copy_reads,
        "inline_slowdown_vs_memory": slowdown,
        "sharded_scaling_vs_inline": scaling,
        "scaling_bar": SCALING_BAR,
        "scaling_bar_enforced": not quick and cores >= 4,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")

    rows = [
        ["pbsm (in memory)", memory_time, len(expected), 0, 0, "-"],
        [
            "pbsm_spill inline (25% budget)",
            spill_time,
            len(pairs),
            inline_stats.tiles_spilled,
            inline_stats.spill_bytes_written,
            f"{slowdown:.2f}x slowdown",
        ],
        [
            f"pbsm_spill sharded ({workers}w)",
            sharded_time,
            len(sharded_pairs),
            stats.tile_runs_dispatched,
            stats.mapped_bytes,
            f"{scaling:.2f}x vs inline",
        ],
    ]
    emit(
        f"Out-of-core PBSM — |A| = |B| = {n:,}, budget = "
        f"{budget:,}B (25% of {working_set:,}B working set), {cores} cores:\n"
        + format_table(
            ["strategy", "wall s", "pairs", "tiles/runs", "bytes out/mapped", "ratio"],
            rows,
        )
        + f"\nbudget high-water: {stats.budget_high_water:,}B"
        + f" | spill read back: {stats.spill_bytes_read:,}B"
        + f" | results -> {os.path.basename(JSON_PATH)}\n"
        + report
        + "\npaper: out-of-memory joins at near-in-memory speed via mapped tiles"
    )
    return results


def test_spill_join_exact_at_quick_scale():
    """Harness smoke: exact pairs + live spill telemetry under the budget."""
    run(quick=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (8k per side)")
    args = parser.parse_args()
    results = run(quick=args.quick)
    slowdown = results["inline_slowdown_vs_memory"]
    scaling = results["sharded_scaling_vs_inline"]
    if args.quick:
        print(
            f"OK: exact under 25% budget, slowdown {slowdown:.2f}x, "
            f"sharded scaling {scaling:.2f}x (quick scale)"
        )
        return
    # The ISSUE 5 acceptance bar, at full scale only.
    assert slowdown <= 5.0, f"spilling PBSM slowdown {slowdown:.2f}x > 5x"
    # The ISSUE 9 acceptance bar: >= 2.5x over the single-worker external
    # join — only meaningful with real parallel hardware, so gated on cores.
    if results["scaling_bar_enforced"]:
        assert scaling >= SCALING_BAR, (
            f"sharded external join scaled {scaling:.2f}x < {SCALING_BAR}x "
            f"on {results['cores']} cores"
        )
    print(
        f"OK: exact under 25% budget at n={FULL_N:,}, slowdown {slowdown:.2f}x "
        f"(<= 5x), sharded scaling {scaling:.2f}x on {results['cores']} cores"
    )


if __name__ == "__main__":
    main()
