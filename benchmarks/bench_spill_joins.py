"""Out-of-core PBSM under a memory budget vs the in-memory vectorized PBSM.

The paper's framing: the target datasets "exceed the memory of a single
machine by definition", so a join must degrade gracefully when its working
set does not fit.  ``pbsm_spill`` (the ISSUE 5 tentpole) runs the exact same
partition/merge algorithm as the in-memory ``pbsm`` strategy, but stages it
through the memory governor + spill manager so no phase holds more than a
quarter of the budget.

The measurement: |A| = |B| = n, the session budget pinned to **25% of the
estimated in-memory working set** (`repro.exec.pbsm_working_set_bytes`), so
the planner must route to the spilling strategy and the strategy must
actually spill.  Asserted at every scale:

* the pair set is **identical** to the in-memory vectorized PBSM;
* the planner routed to ``pbsm_spill`` and spill counters are live
  (tiles spilled, bytes out/back, budget high-water);
* at full scale only: the slowdown vs in-memory PBSM is ≤ 5x (the ISSUE 5
  acceptance bar; typically lands ~1.5-2.5x).

Usage::

    PYTHONPATH=src python benchmarks/bench_spill_joins.py          # full scale
    PYTHONPATH=src python benchmarks/bench_spill_joins.py --quick  # CI smoke

Also collectable by pytest, where it runs at quick scale and checks
exactness + routing, not wall-clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from bench_common import emit
from repro.analysis.reporting import format_table
from repro.analysis.session_report import join_report
from repro.exec import pbsm_working_set_bytes
from repro.geometry.aabb import AABB
from repro.joins import JoinSession, PairJoinSpec

FULL_N = 100_000
QUICK_N = 8_000
BUDGET_SHARE = 0.25  # the ISSUE 5 bar: budget <= 25% of the working set


def join_workload(n: int, seed: int = 0):
    """Two disjoint sets of synapse-scale boxes in the canonical universe."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 99.0, size=(2 * n, 3))
    hi = np.minimum(lo + rng.uniform(0.05, 1.0, size=(2 * n, 3)), 100.0)
    items = [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]
    return items[:n], items[n:]


def run(quick: bool = False) -> float:
    n = QUICK_N if quick else FULL_N
    side_a, side_b = join_workload(n)

    memory_session = JoinSession(strategy="pbsm")
    start = time.perf_counter()
    expected = memory_session.run(PairJoinSpec(side_a, side_b))
    memory_time = time.perf_counter() - start

    working_set = pbsm_working_set_bytes(n, n)
    budget = int(working_set * BUDGET_SHARE)
    with JoinSession(budget=budget) as session:
        start = time.perf_counter()
        pairs = session.run(PairJoinSpec(side_a, side_b))
        spill_time = time.perf_counter() - start
        stats = session.stats
        report = join_report(session)

        assert pairs == expected, "pbsm_spill diverged from in-memory PBSM"
        assert stats.strategy_runs.get("pbsm_spill") == 1, (
            f"planner did not route to pbsm_spill: {stats.strategy_runs}"
        )
        assert stats.tiles_spilled > 0 and stats.spill_bytes_written > 0, (
            "budget was 25% of the working set but nothing spilled"
        )

    slowdown = spill_time / max(memory_time, 1e-9)
    rows = [
        ["pbsm (in memory)", memory_time, len(expected), 0, 0, "-"],
        [
            "pbsm_spill (25% budget)",
            spill_time,
            len(pairs),
            stats.tiles_spilled,
            stats.spill_bytes_written,
            f"{slowdown:.2f}x",
        ],
    ]
    emit(
        f"Out-of-core PBSM — |A| = |B| = {n:,}, budget = "
        f"{budget:,}B (25% of {working_set:,}B working set):\n"
        + format_table(
            ["strategy", "wall s", "pairs", "tiles spilled", "bytes written", "slowdown"],
            rows,
        )
        + f"\nbudget high-water: {stats.budget_high_water:,}B"
        + f" | spill read back: {stats.spill_bytes_read:,}B\n"
        + report
        + "\npaper: out-of-memory joins at near-in-memory speed via spilled tiles"
    )
    return slowdown


def test_spill_join_exact_at_quick_scale():
    """Harness smoke: exact pairs + live spill telemetry under the budget."""
    run(quick=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (8k per side)")
    args = parser.parse_args()
    slowdown = run(quick=args.quick)
    if args.quick:
        print(f"OK: exact under 25% budget, slowdown {slowdown:.2f}x (quick scale)")
        return
    # The ISSUE 5 acceptance bar, at full scale only.
    assert slowdown <= 5.0, f"spilling PBSM slowdown {slowdown:.2f}x > 5x"
    print(f"OK: exact under 25% budget at n={FULL_N:,}, slowdown {slowdown:.2f}x (<= 5x)")


if __name__ == "__main__":
    main()
