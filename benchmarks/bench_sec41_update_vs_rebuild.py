"""Section 4.1 — updating all elements vs rebuilding the R-tree.

Paper: on the plasticity trace (everything moves 0.04 µm/step), updating all
elements of the R-tree takes 130 s/step while rebuilding from scratch takes
48 s; "updating only is faster than a rebuild if less than 38 % of the
dataset change in a time step."

Reproduction: the same sweep over the changed fraction at harness scale,
with real wall-clock measurements of per-element updates and STR rebuilds.
Shape assertions: rebuild beats updating-everything, and the measured
crossover fraction sits strictly between 0 and 1 (the paper's is 0.38; the
exact value depends on the update/bulk-load cost ratio of the substrate).
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.core.amortization import MaintenanceCosts
from repro.datasets.trajectories import PlasticityMotion
from repro.indexes.rtree import RTree

from bench_common import emit

FRACTIONS = (0.05, 0.1, 0.2, 0.38, 0.6, 0.8, 1.0)


def test_sec41_update_vs_rebuild(neuron_dataset, benchmark):
    items = neuron_dataset.items
    live = dict(items)
    motion = PlasticityMotion(universe=neuron_dataset.universe, seed=11)
    all_moves = motion.step(live)

    tree = RTree(max_entries=16)

    def rebuild():
        tree.bulk_load(items)

    start = time.perf_counter()
    rebuild()
    rebuild_seconds = time.perf_counter() - start

    # Price one per-element update from a representative sample.
    sample = all_moves[: max(200, len(all_moves) // 20)]
    start = time.perf_counter()
    for eid, old, new in sample:
        tree.update(eid, old, new)
    per_update = (time.perf_counter() - start) / len(sample)
    for eid, old, new in sample:  # restore
        tree.update(eid, new, old)

    full_update_seconds = per_update * len(items)
    crossover = rebuild_seconds / full_update_seconds

    rows = []
    for fraction in FRACTIONS:
        update_cost = per_update * len(items) * fraction
        winner = "update" if update_cost < rebuild_seconds else "rebuild"
        rows.append([f"{fraction:.0%}", update_cost, rebuild_seconds, winner])

    emit(
        "Section 4.1 — update vs rebuild per step "
        f"({len(items)} elements, plasticity motion):\n"
        + format_table(["changed", "update s", "rebuild s", "winner"], rows)
        + f"\nmeasured crossover: {crossover:.1%} changed "
        f"(paper: 38% at 200M elements; full update {full_update_seconds:.2f}s "
        f"vs rebuild {rebuild_seconds:.2f}s)"
    )

    benchmark.pedantic(rebuild, rounds=1, iterations=1)

    assert full_update_seconds > rebuild_seconds, (
        "updating every element must cost more than one rebuild "
        f"({full_update_seconds:.2f}s vs {rebuild_seconds:.2f}s)"
    )
    assert 0.0 < crossover < 1.0

    # The MaintenanceCosts abstraction must agree with the raw measurement.
    costs = MaintenanceCosts(
        update_per_element=per_update,
        rebuild_fixed=rebuild_seconds,
        query_indexed=0.0,
        query_scan=0.0,
        n_elements=len(items),
    )
    assert abs(costs.crossover_fraction() - crossover) < 1e-9
